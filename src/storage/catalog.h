#ifndef WDL_STORAGE_CATALOG_H_
#define WDL_STORAGE_CATALOG_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/fact.h"
#include "ast/program.h"
#include "base/result.h"
#include "base/symbol.h"
#include "storage/relation.h"

namespace wdl {

/// The schema-and-data dictionary of a single peer. Relations are keyed
/// by relation name; the owning peer name is fixed at construction (a
/// peer only ever stores relations located at itself — remote facts
/// travel over the network instead).
///
/// WebdamLog programs are dynamic: peers discover new relations at run
/// time (§2, "peers may discover new peers and new relations"). The
/// catalog therefore supports auto-declaration: an insert into an
/// unknown relation creates an extensional relation with inferred
/// any-typed columns when `auto_declare` is enabled (the default,
/// matching the system's behavior).
class Catalog {
 public:
  explicit Catalog(std::string owner_peer, bool auto_declare = true)
      : owner_peer_(std::move(owner_peer)), auto_declare_(auto_declare) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  const std::string& owner_peer() const { return owner_peer_; }

  /// Declares a relation. The declaration's peer must be the owner peer.
  Status Declare(const RelationDecl& decl);

  bool Has(const std::string& relation) const {
    return relations_.count(relation) > 0;
  }

  /// nullptr when undeclared.
  Relation* Get(const std::string& relation);
  const Relation* Get(const std::string& relation) const;

  /// Symbol-id lookup: O(1) integer hash, no string comparison. Every
  /// declared relation's name is interned at Declare time, so compiled
  /// rule plans resolve atoms by id in the join loop (DESIGN.md §4).
  /// nullptr when undeclared (or `sym` is invalid).
  Relation* Get(Symbol sym) {
    auto it = by_symbol_.find(sym.id());
    return it == by_symbol_.end() ? nullptr : it->second;
  }
  const Relation* Get(Symbol sym) const {
    auto it = by_symbol_.find(sym.id());
    return it == by_symbol_.end() ? nullptr : it->second;
  }

  /// Removes a relation and its contents; returns false when it was
  /// never declared. Intended for ad-hoc scratch relations (recycled
  /// `__query_<n>` names): any outstanding `Relation*` dangles, so
  /// callers must only undeclare relations no plan or rule still
  /// references.
  bool Undeclare(const std::string& relation);

  /// Inserts a fact located at this peer, auto-declaring if allowed.
  /// Returns true when the tuple was new.
  Result<bool> InsertFact(const Fact& fact);

  /// Removes a fact; NotFound if the relation is undeclared.
  Result<bool> RemoveFact(const Fact& fact);

  /// Relation names in sorted order (stable listings for UI/tests).
  std::vector<std::string> RelationNames() const;

  /// All resident facts of one relation, in canonical order.
  Result<std::vector<Fact>> Snapshot(const std::string& relation) const;

  /// Total resident tuples across all relations.
  size_t TotalTuples() const;

  /// Invokes `fn` on every declared relation, in name order. The
  /// clear-all-views stage reset that used to live here is gone:
  /// whether a view resets or persists across stages is an engine
  /// policy (recompute oracle vs incremental maintenance, DESIGN.md
  /// §6), so the engine drives per-relation resets through this.
  void ForEachRelation(const std::function<void(Relation&)>& fn);

 private:
  std::string owner_peer_;
  bool auto_declare_;
  std::map<std::string, std::unique_ptr<Relation>> relations_;
  // Interned-name index over relations_ (same lifetime; erased only by
  // Undeclare, which scratch-name recycling uses).
  std::unordered_map<uint32_t, Relation*> by_symbol_;
};

}  // namespace wdl

#endif  // WDL_STORAGE_CATALOG_H_
