#include "wrappers/facebook_service.h"

namespace wdl {

void FacebookService::AddUser(const std::string& user) {
  if (users_.insert(user).second) ++version_;
}

bool FacebookService::HasUser(const std::string& user) const {
  return users_.count(user) > 0;
}

void FacebookService::AddFriendship(const std::string& a,
                                    const std::string& b) {
  AddUser(a);
  AddUser(b);
  bool changed = friends_[a].insert(b).second;
  changed |= friends_[b].insert(a).second;
  if (changed) ++version_;
}

std::vector<std::string> FacebookService::FriendsOf(
    const std::string& user) const {
  auto it = friends_.find(user);
  if (it == friends_.end()) return {};
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

void FacebookService::CreateGroup(const std::string& group) {
  if (group_members_.emplace(group, std::set<std::string>()).second) {
    ++version_;
  }
}

bool FacebookService::HasGroup(const std::string& group) const {
  return group_members_.count(group) > 0;
}

Status FacebookService::JoinGroup(const std::string& group,
                                  const std::string& user) {
  auto it = group_members_.find(group);
  if (it == group_members_.end()) {
    return Status::NotFound("no Facebook group named " + group);
  }
  AddUser(user);
  if (it->second.insert(user).second) ++version_;
  return Status::OK();
}

std::vector<std::string> FacebookService::GroupMembers(
    const std::string& group) const {
  auto it = group_members_.find(group);
  if (it == group_members_.end()) return {};
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

Status FacebookService::PostPicture(const std::string& group,
                                    const Picture& picture) {
  auto it = group_members_.find(group);
  if (it == group_members_.end()) {
    return Status::NotFound("no Facebook group named " + group);
  }
  if (!it->second.count(picture.owner)) {
    return Status::PermissionDenied("user " + picture.owner +
                                    " is not a member of group " + group);
  }
  auto [pos, inserted] =
      group_pictures_[group].emplace(picture.id, picture);
  (void)pos;
  if (inserted) ++version_;
  return Status::OK();
}

std::vector<FacebookService::Picture> FacebookService::GroupPictures(
    const std::string& group) const {
  auto it = group_pictures_.find(group);
  if (it == group_pictures_.end()) return {};
  std::vector<Picture> out;
  out.reserve(it->second.size());
  for (const auto& [id, pic] : it->second) out.push_back(pic);
  return out;
}

bool FacebookService::GroupHasPicture(const std::string& group,
                                      int64_t picture_id) const {
  auto it = group_pictures_.find(group);
  return it != group_pictures_.end() && it->second.count(picture_id) > 0;
}

void FacebookService::AddUserPicture(const std::string& user,
                                     const Picture& picture) {
  AddUser(user);
  if (user_pictures_[user].emplace(picture.id, picture).second) ++version_;
}

std::vector<FacebookService::Picture> FacebookService::UserPictures(
    const std::string& user) const {
  auto it = user_pictures_.find(user);
  if (it == user_pictures_.end()) return {};
  std::vector<Picture> out;
  out.reserve(it->second.size());
  for (const auto& [id, pic] : it->second) out.push_back(pic);
  return out;
}

Status FacebookService::AddComment(const std::string& group,
                                   const Comment& comment) {
  if (!HasGroup(group)) {
    return Status::NotFound("no Facebook group named " + group);
  }
  group_comments_[group].push_back(comment);
  ++version_;
  return Status::OK();
}

std::vector<FacebookService::Comment> FacebookService::GroupComments(
    const std::string& group) const {
  auto it = group_comments_.find(group);
  if (it == group_comments_.end()) return {};
  return it->second;
}

}  // namespace wdl
