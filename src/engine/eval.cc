#include "engine/eval.h"

#include "base/logging.h"

namespace wdl {

const std::string* ResolveSym(const SymTerm& sym, const Binding& binding,
                              std::string* storage) {
  if (sym.is_name()) return &sym.name();
  const Value* v = binding.Get(sym.var());
  if (v == nullptr || !v->is_string()) return nullptr;
  *storage = v->AsString();
  return storage;
}

bool SubstituteAtom(const Atom& atom, const Binding& binding, Atom* out) {
  auto sub_sym = [&](const SymTerm& sym, SymTerm* dst) {
    if (sym.is_name()) {
      *dst = sym;
      return true;
    }
    const Value* v = binding.Get(sym.var());
    if (v == nullptr) {
      *dst = sym;
      return true;
    }
    if (!v->is_string()) return false;
    *dst = SymTerm::Name(v->AsString());
    return true;
  };

  Atom result;
  result.negated = atom.negated;
  if (!sub_sym(atom.relation, &result.relation)) return false;
  if (!sub_sym(atom.peer, &result.peer)) return false;
  result.args.reserve(atom.args.size());
  for (const Term& t : atom.args) {
    if (t.is_constant()) {
      result.args.push_back(t);
      continue;
    }
    const Value* v = binding.Get(t.var());
    result.args.push_back(v != nullptr ? Term::Constant(*v) : t);
  }
  *out = std::move(result);
  return true;
}

void RuleEvaluator::Evaluate(const Rule& rule, const DeltaMap* delta,
                             int delta_pos, const Sinks& sinks) {
  Binding binding;
  MatchFrom(rule, 0, &binding, delta, delta_pos, sinks);
}

void RuleEvaluator::MatchFrom(const Rule& rule, size_t atom_index,
                              Binding* binding, const DeltaMap* delta,
                              int delta_pos, const Sinks& sinks) {
  if (atom_index == rule.body.size()) {
    EmitHead(rule, *binding, sinks);
    return;
  }
  const Atom& atom = rule.body[atom_index];

  // Resolve the atom's location. Safety analysis guarantees relation and
  // peer variables are bound here; a binding of the wrong type (e.g. a
  // peer variable bound to an int) makes the branch dead.
  std::string rel_storage, peer_storage;
  const std::string* rel = ResolveSym(atom.relation, *binding, &rel_storage);
  const std::string* peer = ResolveSym(atom.peer, *binding, &peer_storage);
  if (rel == nullptr || peer == nullptr) return;

  if (*peer != self_peer_) {
    // Remote atom: delegate the residual rule to that peer.
    EmitDelegation(rule, atom_index, *peer, *binding, sinks);
    return;
  }

  Relation* relation = catalog_->Get(*rel);

  if (atom.negated) {
    // Safety guarantees the atom is ground under `binding`.
    Atom ground;
    if (!SubstituteAtom(atom, *binding, &ground)) return;
    if (!ground.IsGround()) {
      WDL_LOG(Error) << "negated atom not ground at evaluation time: "
                     << ground.ToString();
      return;
    }
    Tuple probe;
    probe.reserve(ground.args.size());
    for (const Term& t : ground.args) probe.push_back(t.value());
    bool present = relation != nullptr &&
                   probe.size() == relation->arity() &&
                   relation->Contains(probe);
    if (!present) {
      MatchFrom(rule, atom_index + 1, binding, delta, delta_pos, sinks);
    }
    return;
  }

  if (relation == nullptr) return;  // empty: no matches
  if (atom.args.size() != relation->arity()) return;  // arity mismatch

  // Unify one stored tuple with the atom's argument terms.
  auto try_tuple = [&](const Tuple& tuple) {
    ++counters_.tuples_examined;
    size_t mark = binding->Mark();
    bool ok = true;
    for (size_t i = 0; i < atom.args.size() && ok; ++i) {
      const Term& t = atom.args[i];
      if (t.is_constant()) {
        ok = t.value() == tuple[i];
        continue;
      }
      const Value* bound = binding->Get(t.var());
      if (bound != nullptr) {
        ok = *bound == tuple[i];
      } else {
        binding->Bind(t.var(), tuple[i]);
      }
    }
    if (ok) {
      MatchFrom(rule, atom_index + 1, binding, delta, delta_pos, sinks);
    }
    binding->Rewind(mark);
  };

  // Semi-naive: this atom is restricted to the Δ of its relation.
  if (delta != nullptr && delta_pos == static_cast<int>(atom_index)) {
    auto it = delta->find(*rel);
    if (it == delta->end()) return;
    for (const Tuple& tuple : it->second) {
      if (tuple.size() == atom.args.size()) try_tuple(tuple);
    }
    return;
  }

  // Access-path selection: the first argument position carrying a
  // constant (literal or bound variable) drives an index lookup;
  // otherwise scan.
  if (options_.use_indexes) {
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& t = atom.args[i];
      const Value* key = nullptr;
      if (t.is_constant()) {
        key = &t.value();
      } else {
        key = binding->Get(t.var());
      }
      if (key != nullptr) {
        relation->LookupEqual(i, *key, try_tuple);
        return;
      }
    }
  }
  relation->ForEach(try_tuple);
}

void RuleEvaluator::EmitHead(const Rule& rule, const Binding& binding,
                             const Sinks& sinks) {
  std::string rel_storage, peer_storage;
  const std::string* rel =
      ResolveSym(rule.head.relation, binding, &rel_storage);
  const std::string* peer = ResolveSym(rule.head.peer, binding, &peer_storage);
  if (rel == nullptr || peer == nullptr) return;  // non-string name: dead

  Fact fact;
  fact.relation = *rel;
  fact.peer = *peer;
  fact.args.reserve(rule.head.args.size());
  for (const Term& t : rule.head.args) {
    if (t.is_constant()) {
      fact.args.push_back(t.value());
    } else {
      const Value* v = binding.Get(t.var());
      if (v == nullptr) return;  // unreachable for safe rules
      fact.args.push_back(*v);
    }
  }
  ++counters_.bindings_completed;
  if (fact.peer == self_peer_) {
    if (sinks.on_local_fact) sinks.on_local_fact(fact);
  } else {
    if (sinks.on_remote_fact) sinks.on_remote_fact(fact);
  }
}

void RuleEvaluator::EmitDelegation(const Rule& rule, size_t split_index,
                                   const std::string& target,
                                   const Binding& binding,
                                   const Sinks& sinks) {
  Delegation d;
  d.origin_peer = self_peer_;
  d.target_peer = target;
  d.origin_rule_hash = rule.Hash();
  if (!SubstituteAtom(rule.head, binding, &d.rule.head)) return;
  d.rule.body.reserve(rule.body.size() - split_index);
  for (size_t i = split_index; i < rule.body.size(); ++i) {
    Atom substituted;
    if (!SubstituteAtom(rule.body[i], binding, &substituted)) return;
    d.rule.body.push_back(std::move(substituted));
  }
  ++counters_.delegations_emitted;
  if (sinks.on_delegation) sinks.on_delegation(d);
}

}  // namespace wdl
