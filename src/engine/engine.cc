#include "engine/engine.h"

#include <algorithm>

#include "base/logging.h"
#include "base/string_util.h"

namespace wdl {

uint64_t HashTupleSet(const std::unordered_set<Tuple, TupleHasher>& set) {
  // XOR is order-independent; salt with size so {} and {t, t} can't
  // collide with rearrangements (sets have no duplicates, but the salt
  // also separates the empty set from "absent").
  uint64_t h = set.size();
  TupleHasher hasher;
  for (const Tuple& t : set) h ^= hasher(t) | 1;
  return h;
}

Engine::Engine(std::string self_peer, EngineOptions options)
    : self_peer_(std::move(self_peer)),
      options_(options),
      catalog_(self_peer_),
      evaluator_(&catalog_, self_peer_,
                 EvalOptions{options_.use_indexes,
                             options_.use_compiled_plans}) {}

Status Engine::LoadProgram(const Program& program) {
  WDL_RETURN_IF_ERROR(ValidateProgram(program, options_.dialect));
  for (const RelationDecl& d : program.declarations) {
    WDL_RETURN_IF_ERROR(DeclareRelation(d));
  }
  for (const Fact& f : program.facts) {
    WDL_RETURN_IF_ERROR(InsertFact(f).status());
  }
  for (const Rule& r : program.rules) {
    WDL_RETURN_IF_ERROR(AddRule(r).status());
  }
  return Status::OK();
}

Status Engine::DeclareRelation(const RelationDecl& decl) {
  return catalog_.Declare(decl);
}

Status Engine::ValidateNewRule(const Rule& rule) const {
  WDL_RETURN_IF_ERROR(CheckRuleSafety(rule));
  if (rule.head_deletes && rule.head.HasConcreteLocation() &&
      rule.head.peer.name() == self_peer_) {
    const Relation* rel = catalog_.Get(rule.head.relation.name());
    if (rel != nullptr && rel->kind() == RelationKind::kIntensional) {
      return Status::FailedPrecondition(
          "deletion rule targets intensional relation " +
          rule.head.PredicateId() + "; views cannot be deleted from");
    }
  }
  bool negated = false;
  for (const Atom& a : rule.body) negated |= a.negated;
  if (negated && options_.dialect == Dialect::kPaper2013) {
    return Status::Unimplemented(
        "negation is not implemented in the 2013 system (rule: " +
        rule.ToString() + ")");
  }
  if (negated) {
    // The new rule must stratify together with the existing program.
    std::vector<Rule> all;
    all.reserve(rules_.size() + 1);
    for (const InstalledRule& ir : rules_) all.push_back(ir.rule);
    all.push_back(rule);
    WDL_ASSIGN_OR_RETURN(Stratification s, Stratify(all));
    (void)s;
  }
  return Status::OK();
}

Result<uint64_t> Engine::AddRule(const Rule& rule) {
  WDL_RETURN_IF_ERROR(ValidateNewRule(rule));
  InstalledRule ir;
  ir.id = next_rule_id_++;
  ir.rule = rule;
  ir.origin_peer = self_peer_;
  rules_.push_back(std::move(ir));
  dirty_ = true;
  return rules_.back().id;
}

Status Engine::RemoveRule(uint64_t id) {
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if (it->id == id) {
      evaluator_.EvictPlan(it->rule);
      rules_.erase(it);
      dirty_ = true;
      return Status::OK();
    }
  }
  return Status::NotFound("no rule with id " + std::to_string(id));
}

Status Engine::InstallDelegatedRule(const Delegation& delegation) {
  if (delegation.target_peer != self_peer_) {
    return Status::InvalidArgument(StrFormat(
        "delegation targets peer '%s', not '%s'",
        delegation.target_peer.c_str(), self_peer_.c_str()));
  }
  WDL_RETURN_IF_ERROR(ValidateNewRule(delegation.rule));
  uint64_t key = delegation.Key();
  for (const InstalledRule& ir : rules_) {
    if (ir.delegation_key == key) return Status::OK();  // idempotent
  }
  InstalledRule ir;
  ir.id = next_rule_id_++;
  ir.rule = delegation.rule;
  ir.origin_peer = delegation.origin_peer;
  ir.delegation_key = key;
  rules_.push_back(std::move(ir));
  dirty_ = true;
  return Status::OK();
}

void Engine::RetractDelegatedRule(uint64_t delegation_key) {
  dirty_ = true;
  rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                              [&](const InstalledRule& ir) {
                                if (ir.delegation_key != delegation_key) {
                                  return false;
                                }
                                evaluator_.EvictPlan(ir.rule);
                                return true;
                              }),
               rules_.end());
}

Result<bool> Engine::InsertFact(const Fact& fact) {
  if (fact.peer != self_peer_) {
    return Status::InvalidArgument("InsertFact of remote fact " +
                                   fact.ToString() +
                                   "; route it through the runtime");
  }
  const Relation* rel = catalog_.Get(fact.relation);
  if (rel != nullptr && rel->kind() == RelationKind::kIntensional) {
    return Status::FailedPrecondition(
        "relation " + fact.PredicateId() +
        " is intensional (a view); base updates are not allowed");
  }
  dirty_ = true;
  return catalog_.InsertFact(fact);
}

Result<bool> Engine::RemoveFact(const Fact& fact) {
  if (fact.peer != self_peer_) {
    return Status::InvalidArgument("RemoveFact of remote fact " +
                                   fact.ToString());
  }
  const Relation* rel = catalog_.Get(fact.relation);
  if (rel != nullptr && rel->kind() == RelationKind::kIntensional) {
    return Status::FailedPrecondition(
        "relation " + fact.PredicateId() +
        " is intensional (a view); base updates are not allowed");
  }
  dirty_ = true;
  return catalog_.RemoveFact(fact);
}

void Engine::EnqueueFactInserts(std::vector<Fact> facts) {
  for (Fact& f : facts) inbound_inserts_.push_back(std::move(f));
}

void Engine::EnqueueFactDeletes(std::vector<Fact> facts) {
  for (Fact& f : facts) inbound_deletes_.push_back(std::move(f));
}

void Engine::EnqueueDerivedSet(const std::string& sender, DerivedSet set) {
  inbound_derived_.emplace_back(sender, std::move(set));
}

bool Engine::HasPendingWork() const {
  return dirty_ || !inbound_inserts_.empty() || !inbound_deletes_.empty() ||
         !inbound_derived_.empty() || !pending_self_updates_.empty() ||
         !pending_self_deletes_.empty() || !ran_any_stage_;
}

void Engine::ApplyInputs(StageStats* stats, bool* changed) {
  (void)stats;
  // Deferred self-updates from the previous stage land first.
  for (const Fact& f : pending_self_updates_) {
    Result<bool> r = catalog_.InsertFact(f);
    if (!r.ok()) {
      WDL_LOG(Error) << "self-update " << f.ToString()
                     << " failed: " << r.status();
    } else if (*r) {
      *changed = true;
    }
  }
  pending_self_updates_.clear();

  for (const Fact& f : pending_self_deletes_) {
    Result<bool> r = catalog_.RemoveFact(f);
    if (r.ok() && *r) *changed = true;
  }
  pending_self_deletes_.clear();

  for (const Fact& f : inbound_inserts_) {
    const Relation* rel = catalog_.Get(f.relation);
    if (rel != nullptr && rel->kind() == RelationKind::kIntensional) {
      WDL_LOG(Warning) << "dropping base insert into intensional relation "
                       << f.PredicateId();
      continue;
    }
    Result<bool> r = catalog_.InsertFact(f);
    if (!r.ok()) {
      WDL_LOG(Error) << "inbound insert " << f.ToString()
                     << " failed: " << r.status();
    } else if (*r) {
      *changed = true;
    }
  }
  inbound_inserts_.clear();

  for (const Fact& f : inbound_deletes_) {
    Result<bool> r = catalog_.RemoveFact(f);
    if (r.ok() && *r) *changed = true;
  }
  inbound_deletes_.clear();

  for (auto& [sender, set] : inbound_derived_) {
    Relation* rel = catalog_.Get(set.relation);
    if (rel == nullptr) {
      // A peer is telling us about a relation we do not know yet: the
      // paper's "peers may discover new relations". Create it as
      // extensional with inferred arity.
      if (set.tuples.empty()) continue;
      RelationDecl decl;
      decl.relation = set.relation;
      decl.peer = self_peer_;
      decl.kind = RelationKind::kExtensional;
      decl.columns.resize(set.tuples[0].size());
      for (size_t i = 0; i < decl.columns.size(); ++i) {
        decl.columns[i].name = "c" + std::to_string(i);
      }
      Status st = catalog_.Declare(decl);
      if (!st.ok()) {
        WDL_LOG(Error) << "auto-declare failed: " << st;
        continue;
      }
      rel = catalog_.Get(set.relation);
    }
    if (rel->kind() == RelationKind::kExtensional) {
      // Updates are persistent: union-insert, never delete.
      for (Tuple& t : set.tuples) {
        Result<bool> r = rel->Insert(std::move(t));
        if (!r.ok()) {
          WDL_LOG(Error) << "inbound derived tuple rejected by "
                         << rel->decl().PredicateId() << ": " << r.status();
        } else if (*r) {
          *changed = true;
        }
      }
    } else {
      // View semantics: replace this sender's slice.
      TupleSet slice;
      for (Tuple& t : set.tuples) {
        if (rel->CheckTuple(t).ok()) slice.insert(std::move(t));
      }
      TupleSet& stored = remote_contributions_[set.relation][sender];
      if (HashTupleSet(stored) != HashTupleSet(slice)) *changed = true;
      if (slice.empty()) {
        remote_contributions_[set.relation].erase(sender);
      } else {
        stored = std::move(slice);
      }
    }
  }
  inbound_derived_.clear();
}

void Engine::SeedIntensionalFromContributions() {
  for (auto& [relation, by_sender] : remote_contributions_) {
    Relation* rel = catalog_.Get(relation);
    if (rel == nullptr || rel->kind() != RelationKind::kIntensional) {
      continue;
    }
    for (auto& [sender, slice] : by_sender) {
      for (const Tuple& t : slice) {
        Result<bool> r = rel->Insert(t);
        if (!r.ok()) {
          WDL_LOG(Warning) << "contribution tuple rejected: " << r.status();
        }
      }
    }
  }
}

void Engine::RunFixpoint(
    StageStats* stats, std::map<ContributionKey, TupleSet>* contributions,
    std::map<uint64_t, Delegation>* delegations,
    std::unordered_set<Fact, FactHasher>* self_updates,
    std::unordered_set<Fact, FactHasher>* self_deletes,
    std::unordered_set<Fact, FactHasher>* remote_deletes) {
  // Stratify the active rule set (single stratum when negation-free).
  std::vector<Rule> rule_bodies;
  rule_bodies.reserve(rules_.size());
  for (const InstalledRule& ir : rules_) rule_bodies.push_back(ir.rule);
  Stratification strat;
  Result<Stratification> strat_result = Stratify(rule_bodies);
  if (strat_result.ok()) {
    strat = std::move(strat_result).value();
  } else {
    // A delegated rule may have broken stratification after install
    // validation (dynamic arrivals); fall back to one stratum and log.
    WDL_LOG(Error) << "stratification failed; evaluating in one stratum: "
                   << strat_result.status();
    strat.rule_stratum.assign(rules_.size(), 0);
    strat.num_strata = 1;
  }
  stats->strata = strat.num_strata;

  // The evaluator (and its plan cache) lives across stages; stage stats
  // report the delta of its cumulative counters.
  uint64_t tuples_before = evaluator_.counters().tuples_examined;

  for (int stratum = 0; stratum < strat.num_strata; ++stratum) {
    // Resolve each active rule's compiled plan once per stage; the
    // iteration loops below re-drive the plan directly instead of
    // re-hashing the rule through the cache every call. `plan` stays
    // null on the interpreter path.
    struct ActiveRule {
      const Rule* rule;
      const RulePlan* plan;
    };
    std::vector<ActiveRule> active;
    for (size_t i = 0; i < rules_.size(); ++i) {
      if (strat.rule_stratum[i] != stratum) continue;
      const Rule& rule = rules_[i].rule;
      active.push_back(ActiveRule{
          &rule, options_.use_compiled_plans ? &evaluator_.PlanFor(rule)
                                             : nullptr});
    }
    if (active.empty()) continue;

    DeltaMap delta;      // tuples new in the previous iteration
    DeltaMap next_delta; // tuples new in this iteration

    // Set per evaluation: whether the rule being evaluated is a
    // deletion rule (its head derivations remove instead of insert).
    bool current_rule_deletes = false;

    RuleEvaluator::Sinks sinks;
    sinks.on_local_fact = [&](const Fact& f) {
      Relation* rel = catalog_.Get(f.relation);
      bool intensional =
          rel != nullptr && rel->kind() == RelationKind::kIntensional;
      if (current_rule_deletes) {
        if (intensional) {
          WDL_LOG(Warning) << "deletion rule derived into view "
                           << f.PredicateId() << "; dropped";
        } else if (rel != nullptr && rel->Contains(f.args)) {
          self_deletes->insert(f);  // deferred, Bud's <-
        }
        return;
      }
      if (intensional) {
        Result<bool> r = rel->Insert(f.args);
        if (r.ok() && *r) {
          next_delta[rel->symbol()].Insert(f.args);
          ++stats->local_derivations;
        }
      } else {
        // Local update rule: deferred to the next stage (Bud's <+).
        if (rel == nullptr || !rel->Contains(f.args)) {
          self_updates->insert(f);
        }
      }
    };
    sinks.on_remote_fact = [&](const Fact& f) {
      if (current_rule_deletes) {
        remote_deletes->insert(f);
      } else {
        (*contributions)[ContributionKey{f.peer, f.relation}].insert(
            f.args);
      }
    };
    sinks.on_delegation = [&](const Delegation& d) {
      delegations->emplace(d.Key(), d);
    };

    auto evaluate = [&](const ActiveRule& ar, const DeltaMap* d, int pos) {
      current_rule_deletes = ar.rule->head_deletes;
      if (ar.plan != nullptr) {
        evaluator_.EvaluatePlan(*ar.plan, d, pos, sinks);
      } else {
        evaluator_.Evaluate(*ar.rule, d, pos, sinks);
      }
    };

    // Iteration 1: full evaluation.
    int iterations = 1;
    for (const ActiveRule& ar : active) evaluate(ar, nullptr, -1);

    if (options_.mode == EvalMode::kNaive) {
      // Naive: re-run everything until no new local facts appear.
      while (!next_delta.empty() &&
             iterations < options_.max_fixpoint_iterations) {
        next_delta.clear();
        ++iterations;
        for (const ActiveRule& ar : active) evaluate(ar, nullptr, -1);
      }
    } else {
      // Semi-naive: only join against the Δ of the previous iteration.
      while (!next_delta.empty() &&
             iterations < options_.max_fixpoint_iterations) {
        delta = std::move(next_delta);
        next_delta = DeltaMap();
        ++iterations;
        for (const ActiveRule& ar : active) {
          for (size_t pos = 0; pos < ar.rule->body.size(); ++pos) {
            if (ar.rule->body[pos].negated) continue;
            evaluate(ar, &delta, static_cast<int>(pos));
          }
        }
      }
    }
    if (iterations >= options_.max_fixpoint_iterations) {
      WDL_LOG(Error) << "fixpoint iteration limit reached at peer "
                     << self_peer_;
    }
    stats->iterations += iterations;
  }
  stats->tuples_examined =
      evaluator_.counters().tuples_examined - tuples_before;
}

uint64_t Engine::IntensionalContentHash() const {
  uint64_t h = 0;
  TupleHasher hasher;
  for (const std::string& name : catalog_.RelationNames()) {
    const Relation* rel = catalog_.Get(name);
    if (rel->kind() != RelationKind::kIntensional) continue;
    uint64_t rel_hash = HashString(name);
    rel->ForEach([&](const Tuple& t) { rel_hash ^= hasher(t) | 1; });
    h = HashCombine(h, rel_hash);
  }
  return h;
}

StageResult Engine::RunStage() {
  StageResult result;
  result.stats.active_rules = rules_.size();
  ran_any_stage_ = true;
  dirty_ = false;

  // Step 1: load inputs received since the previous stage.
  bool changed_local = false;
  ApplyInputs(&result.stats, &changed_local);

  // Step 2: local fixpoint. Intensional relations are views: reset, then
  // re-seed with remote contributions, then derive.
  catalog_.ClearIntensional();
  SeedIntensionalFromContributions();

  std::map<ContributionKey, TupleSet> contributions;
  std::map<uint64_t, Delegation> delegations;
  std::unordered_set<Fact, FactHasher> self_updates;
  std::unordered_set<Fact, FactHasher> self_deletes;
  std::unordered_set<Fact, FactHasher> remote_deletes;
  RunFixpoint(&result.stats, &contributions, &delegations, &self_updates,
              &self_deletes, &remote_deletes);

  pending_self_updates_ = std::move(self_updates);
  pending_self_deletes_ = std::move(self_deletes);

  // Remote deletions ship once per unique fact (idempotent at the
  // receiver; re-sending is pure waste).
  for (const Fact& f : remote_deletes) {
    if (sent_remote_deletes_.insert(f).second) {
      result.outbound[f.peer].fact_deletes.push_back(f);
    }
  }

  // Step 3: emit facts (updates) and rules (delegations) to other peers.
  // Contribution sets ship only when they changed; an emptied set ships
  // once as empty so the receiver clears its slice.
  std::map<ContributionKey, uint64_t> new_hashes;
  for (const auto& [key, set] : contributions) {
    new_hashes[key] = HashTupleSet(set);
  }
  for (const auto& [key, old_hash] : sent_contribution_hash_) {
    if (new_hashes.count(key)) continue;
    (void)old_hash;
    DerivedSet empty_set;
    empty_set.target_peer = key.target_peer;
    empty_set.relation = key.relation;
    result.outbound[key.target_peer].derived_sets.push_back(
        std::move(empty_set));
  }
  for (const auto& [key, set] : contributions) {
    auto it = sent_contribution_hash_.find(key);
    if (it != sent_contribution_hash_.end() &&
        it->second == new_hashes[key]) {
      continue;  // unchanged, stay silent
    }
    DerivedSet ds;
    ds.target_peer = key.target_peer;
    ds.relation = key.relation;
    ds.tuples.assign(set.begin(), set.end());
    std::sort(ds.tuples.begin(), ds.tuples.end());  // deterministic wire
    result.outbound[key.target_peer].derived_sets.push_back(std::move(ds));
  }
  sent_contribution_hash_ = std::move(new_hashes);

  // Delegation diff: install the new, retract the vanished.
  for (const auto& [key, d] : delegations) {
    if (!sent_delegations_.count(key)) {
      result.outbound[d.target_peer].delegation_installs.push_back(d);
    }
  }
  for (const auto& [key, d] : sent_delegations_) {
    if (!delegations.count(key)) {
      result.outbound[d.target_peer].delegation_retracts.push_back(key);
    }
  }
  sent_delegations_ = std::move(delegations);
  result.stats.delegations_active = sent_delegations_.size();

  // Drop empty outbound buckets.
  for (auto it = result.outbound.begin(); it != result.outbound.end();) {
    if (it->second.empty()) {
      it = result.outbound.erase(it);
    } else {
      result.stats.messages_out += it->second.MessageCount();
      ++it;
    }
  }

  uint64_t intensional_hash = IntensionalContentHash();
  bool views_changed = intensional_hash != prev_intensional_hash_;
  prev_intensional_hash_ = intensional_hash;

  result.changed = changed_local || views_changed ||
                   !result.outbound.empty() ||
                   !pending_self_updates_.empty() ||
                   !pending_self_deletes_.empty();
  return result;
}

std::string Engine::DumpAsProgramText() const {
  Program program;
  for (const std::string& name : catalog_.RelationNames()) {
    const Relation* rel = catalog_.Get(name);
    if (StartsWith(name, "__query_")) continue;  // ad-hoc query scratch
    program.declarations.push_back(rel->decl());
    if (rel->kind() == RelationKind::kExtensional) {
      for (Tuple& t : rel->SortedTuples()) {
        program.facts.emplace_back(name, self_peer_, std::move(t));
      }
    }
  }
  for (const InstalledRule& ir : rules_) {
    if (ir.delegation_key == 0) program.rules.push_back(ir.rule);
  }
  return program.ToString();
}

std::vector<const InstalledRule*> Engine::rules() const {
  std::vector<const InstalledRule*> out;
  out.reserve(rules_.size());
  for (const InstalledRule& ir : rules_) out.push_back(&ir);
  return out;
}

std::string Engine::ProgramListing() const {
  std::string out = "program of peer " + self_peer_ + ":\n";
  for (const InstalledRule& ir : rules_) {
    out += "  [" + std::to_string(ir.id) + "] ";
    out += ir.rule.ToString();
    if (ir.delegation_key != 0) {
      out += "   (delegated by " + ir.origin_peer + ")";
    }
    out += "\n";
  }
  if (rules_.empty()) out += "  (no rules)\n";
  return out;
}

}  // namespace wdl
