#include <gtest/gtest.h>

#include "acl/delegation_gate.h"
#include "acl/policy.h"
#include "parser/parser.h"

namespace wdl {
namespace {

Delegation D(const std::string& origin, const std::string& target,
             const std::string& rule_text) {
  Delegation d;
  d.origin_peer = origin;
  d.target_peer = target;
  Result<Rule> r = ParseRule(rule_text);
  EXPECT_TRUE(r.ok()) << r.status();
  d.rule = *r;
  d.origin_rule_hash = d.rule.Hash();
  return d;
}

TEST(DelegationGateTest, UntrustedOriginIsQueued) {
  DelegationGate gate;
  Delegation d = D("julia", "jules", "x@julia($a) :- y@jules($a)");
  EXPECT_EQ(gate.OnArrival(d), DelegationGate::Decision::kPending);
  EXPECT_EQ(gate.pending_count(), 1u);
}

TEST(DelegationGateTest, TrustedOriginPassesThrough) {
  DelegationGate gate;
  gate.TrustPeer("sigmod");
  Delegation d = D("sigmod", "jules", "x@sigmod($a) :- y@jules($a)");
  EXPECT_EQ(gate.OnArrival(d), DelegationGate::Decision::kAccepted);
  EXPECT_EQ(gate.pending_count(), 0u);
}

TEST(DelegationGateTest, BlockedOriginIsRejected) {
  DelegationGate gate;
  gate.BlockPeer("spammer");
  Delegation d = D("spammer", "jules", "x@spammer($a) :- y@jules($a)");
  EXPECT_EQ(gate.OnArrival(d), DelegationGate::Decision::kRejected);
  EXPECT_EQ(gate.pending_count(), 0u);
}

TEST(DelegationGateTest, BlockOverridesTrust) {
  DelegationGate gate;
  gate.TrustPeer("peer");
  gate.BlockPeer("peer");
  EXPECT_FALSE(gate.IsTrusted("peer"));
  EXPECT_TRUE(gate.IsBlocked("peer"));
  gate.TrustPeer("peer");
  EXPECT_TRUE(gate.IsTrusted("peer"));
  EXPECT_FALSE(gate.IsBlocked("peer"));
}

TEST(DelegationGateTest, ApprovePopsAndReturnsDelegation) {
  DelegationGate gate;
  Delegation d = D("julia", "jules", "x@julia($a) :- y@jules($a)");
  gate.OnArrival(d);
  Result<Delegation> approved = gate.Approve(d.Key());
  ASSERT_TRUE(approved.ok());
  EXPECT_EQ(approved->origin_peer, "julia");
  EXPECT_EQ(gate.pending_count(), 0u);
  EXPECT_FALSE(gate.Approve(d.Key()).ok());  // idempotence: gone
}

TEST(DelegationGateTest, RejectDropsWithoutInstalling) {
  DelegationGate gate;
  Delegation d = D("julia", "jules", "x@julia($a) :- y@jules($a)");
  gate.OnArrival(d);
  EXPECT_TRUE(gate.Reject(d.Key()).ok());
  EXPECT_EQ(gate.pending_count(), 0u);
  EXPECT_FALSE(gate.Reject(d.Key()).ok());
}

TEST(DelegationGateTest, RetractionRemovesPendingEntry) {
  DelegationGate gate;
  Delegation d = D("julia", "jules", "x@julia($a) :- y@jules($a)");
  gate.OnArrival(d);
  EXPECT_TRUE(gate.OnRetraction(d.Key()));
  EXPECT_EQ(gate.pending_count(), 0u);
  EXPECT_FALSE(gate.OnRetraction(d.Key()));  // nothing left
}

TEST(DelegationGateTest, DuplicateArrivalQueuedOnce) {
  DelegationGate gate;
  Delegation d = D("julia", "jules", "x@julia($a) :- y@jules($a)");
  gate.OnArrival(d);
  gate.OnArrival(d);
  EXPECT_EQ(gate.pending_count(), 1u);
}

TEST(DelegationGateTest, PendingPreservesArrivalOrder) {
  DelegationGate gate;
  Delegation d1 = D("julia", "jules", "a@julia($x) :- r@jules($x)");
  Delegation d2 = D("emilien", "jules", "b@emilien($x) :- r@jules($x)");
  gate.OnArrival(d1);
  gate.OnArrival(d2);
  std::vector<const Delegation*> pending = gate.Pending();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0]->origin_peer, "julia");
  EXPECT_EQ(pending[1]->origin_peer, "emilien");
}

TEST(DelegationGateTest, AuditLogRecordsEveryDecision) {
  DelegationGate gate;
  gate.TrustPeer("sigmod");
  gate.BlockPeer("spammer");
  gate.OnArrival(D("sigmod", "j", "a@sigmod($x) :- r@j($x)"));
  gate.OnArrival(D("spammer", "j", "b@spammer($x) :- r@j($x)"));
  Delegation d = D("julia", "j", "c@julia($x) :- r@j($x)");
  gate.OnArrival(d);
  ASSERT_TRUE(gate.Approve(d.Key()).ok());
  ASSERT_EQ(gate.audit_log().size(), 4u);
  EXPECT_EQ(gate.audit_log()[0].decision,
            DelegationGate::Decision::kAccepted);
  EXPECT_EQ(gate.audit_log()[1].decision,
            DelegationGate::Decision::kRejected);
  EXPECT_EQ(gate.audit_log()[2].decision,
            DelegationGate::Decision::kPending);
  EXPECT_EQ(gate.audit_log()[3].decision,
            DelegationGate::Decision::kAccepted);
}

TEST(DelegationGateTest, RenderPendingShowsNotification) {
  DelegationGate gate;
  gate.OnArrival(D("Julia", "Jules",
                   "watched@Julia($x) :- pictures@Jules($x, $x)"));
  std::string rendered = gate.RenderPending();
  EXPECT_NE(rendered.find("Julia"), std::string::npos);
  EXPECT_NE(rendered.find("watched@Julia"), std::string::npos);
}

// --- AccessPolicy (the sketched extension model) ----------------------

TEST(PolicyTest, OwnerHoldsAllPrivileges) {
  AccessPolicy policy;
  ASSERT_TRUE(policy.RegisterRelation("pictures@emilien", "emilien").ok());
  EXPECT_TRUE(policy.CheckDirect("pictures@emilien", "emilien",
                                 Privilege::kRead));
  EXPECT_TRUE(policy.CheckDirect("pictures@emilien", "emilien",
                                 Privilege::kWrite));
  EXPECT_FALSE(policy.CheckDirect("pictures@emilien", "jules",
                                  Privilege::kRead));
}

TEST(PolicyTest, GrantAndRevoke) {
  AccessPolicy policy;
  ASSERT_TRUE(policy.RegisterRelation("r@a", "a").ok());
  ASSERT_TRUE(policy.Grant("r@a", "a", "b", Privilege::kRead).ok());
  EXPECT_TRUE(policy.CheckDirect("r@a", "b", Privilege::kRead));
  ASSERT_TRUE(policy.Revoke("r@a", "a", "b", Privilege::kRead).ok());
  EXPECT_FALSE(policy.CheckDirect("r@a", "b", Privilege::kRead));
}

TEST(PolicyTest, NonOwnerCannotGrantWithoutGrantPrivilege) {
  AccessPolicy policy;
  ASSERT_TRUE(policy.RegisterRelation("r@a", "a").ok());
  EXPECT_EQ(policy.Grant("r@a", "b", "c", Privilege::kRead).code(),
            StatusCode::kPermissionDenied);
  // Give b the grant privilege; now it can extend grants.
  ASSERT_TRUE(policy.Grant("r@a", "a", "b", Privilege::kGrant).ok());
  EXPECT_TRUE(policy.Grant("r@a", "b", "c", Privilege::kRead).ok());
  EXPECT_TRUE(policy.CheckDirect("r@a", "c", Privilege::kRead));
}

TEST(PolicyTest, ViewReadIsIntersectionOfBases) {
  AccessPolicy policy;
  ASSERT_TRUE(policy.RegisterRelation("b1@a", "a").ok());
  ASSERT_TRUE(policy.RegisterRelation("b2@a", "a").ok());
  ASSERT_TRUE(policy.RegisterRelation("v@a", "a").ok());
  ASSERT_TRUE(policy.RegisterView("v@a", {"b1@a", "b2@a"}).ok());

  ASSERT_TRUE(policy.Grant("b1@a", "a", "reader", Privilege::kRead).ok());
  // Read on only one base: view denied.
  EXPECT_FALSE(policy.CheckRead("v@a", "reader"));
  ASSERT_TRUE(policy.Grant("b2@a", "a", "reader", Privilege::kRead).ok());
  EXPECT_TRUE(policy.CheckRead("v@a", "reader"));
}

TEST(PolicyTest, DeclassificationOverridesProvenancePolicy) {
  AccessPolicy policy;
  ASSERT_TRUE(policy.RegisterRelation("secret@a", "a").ok());
  ASSERT_TRUE(policy.RegisterRelation("v@a", "a").ok());
  ASSERT_TRUE(policy.RegisterView("v@a", {"secret@a"}).ok());
  EXPECT_FALSE(policy.CheckRead("v@a", "public"));
  ASSERT_TRUE(policy.Declassify("v@a", "a", "public").ok());
  EXPECT_TRUE(policy.CheckRead("v@a", "public"));
  // The base stays protected: only the view was declassified.
  EXPECT_FALSE(policy.CheckRead("secret@a", "public"));
}

TEST(PolicyTest, ViewOverViewChainsRecursively) {
  AccessPolicy policy;
  ASSERT_TRUE(policy.RegisterRelation("base@a", "a").ok());
  ASSERT_TRUE(policy.RegisterRelation("v1@a", "a").ok());
  ASSERT_TRUE(policy.RegisterRelation("v2@a", "a").ok());
  ASSERT_TRUE(policy.RegisterView("v1@a", {"base@a"}).ok());
  ASSERT_TRUE(policy.RegisterView("v2@a", {"v1@a"}).ok());
  EXPECT_FALSE(policy.CheckRead("v2@a", "reader"));
  ASSERT_TRUE(policy.Grant("base@a", "a", "reader", Privilege::kRead).ok());
  EXPECT_TRUE(policy.CheckRead("v2@a", "reader"));
}

TEST(PolicyTest, DeclassifyOnNonViewFails) {
  AccessPolicy policy;
  ASSERT_TRUE(policy.RegisterRelation("r@a", "a").ok());
  EXPECT_EQ(policy.Declassify("r@a", "a", "b").code(),
            StatusCode::kFailedPrecondition);
}

TEST(PolicyTest, CyclicViewDefinitionDeniesConservatively) {
  AccessPolicy policy;
  ASSERT_TRUE(policy.RegisterRelation("v1@a", "a").ok());
  ASSERT_TRUE(policy.RegisterRelation("v2@a", "a").ok());
  ASSERT_TRUE(policy.RegisterView("v1@a", {"v2@a"}).ok());
  ASSERT_TRUE(policy.RegisterView("v2@a", {"v1@a"}).ok());
  EXPECT_FALSE(policy.CheckRead("v1@a", "reader"));  // no crash, no loop
}

TEST(PolicyTest, UnknownPredicateDenied) {
  AccessPolicy policy;
  EXPECT_FALSE(policy.CheckRead("ghost@a", "anyone"));
  EXPECT_FALSE(policy.CheckDirect("ghost@a", "anyone", Privilege::kRead));
}

}  // namespace
}  // namespace wdl
