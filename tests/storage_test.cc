#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/relation.h"

#include "support/builders.h"

namespace wdl {
namespace {

using test::I;
using test::S;

RelationDecl Decl(const std::string& rel, const std::string& peer,
                  std::vector<ColumnSpec> cols,
                  RelationKind kind = RelationKind::kExtensional) {
  RelationDecl d;
  d.relation = rel;
  d.peer = peer;
  d.kind = kind;
  d.columns = std::move(cols);
  return d;
}

TEST(RelationTest, InsertAndContains) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kInt}}));
  Result<bool> inserted = r.Insert({I(1)});
  ASSERT_TRUE(inserted.ok());
  EXPECT_TRUE(*inserted);
  EXPECT_TRUE(r.Contains({I(1)}));
  EXPECT_FALSE(r.Contains({I(2)}));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, DuplicateInsertReturnsFalse) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kInt}}));
  ASSERT_TRUE(*r.Insert({I(1)}));
  Result<bool> again = r.Insert({I(1)});
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, ArityViolationRejected) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kInt}}));
  EXPECT_EQ(r.Insert({I(1), I(2)}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(RelationTest, TypeViolationRejected) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kInt}}));
  EXPECT_EQ(r.Insert({S("nope")}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RelationTest, AnyColumnsAcceptMixedKinds) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kAny}}));
  EXPECT_TRUE(r.Insert({I(1)}).ok());
  EXPECT_TRUE(r.Insert({S("s")}).ok());
  EXPECT_TRUE(r.Insert({Value::Double(0.5)}).ok());
  EXPECT_EQ(r.size(), 3u);
}

TEST(RelationTest, RemoveWorksAndReportsAbsence) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kInt}}));
  ASSERT_TRUE(r.Insert({I(1)}).ok());
  EXPECT_TRUE(*r.Remove({I(1)}));
  EXPECT_FALSE(*r.Remove({I(1)}));
  EXPECT_EQ(r.size(), 0u);
}

TEST(RelationTest, LookupEqualBuildsIndexLazily) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kInt}, {"y", ValueKind::kInt}}));
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(r.Insert({I(i % 10), I(i)}).ok());
  }
  EXPECT_FALSE(r.HasIndex(0));
  int hits = 0;
  r.LookupEqual(0, I(3), [&](const Tuple& t) {
    EXPECT_EQ(t[0], I(3));
    ++hits;
  });
  EXPECT_EQ(hits, 10);
  EXPECT_TRUE(r.HasIndex(0));
}

TEST(RelationTest, IndexStaysConsistentAcrossInsertAndRemove) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kInt}, {"y", ValueKind::kInt}}));
  ASSERT_TRUE(r.Insert({I(1), I(10)}).ok());
  // Build the index, then mutate.
  r.LookupEqual(0, I(1), [](const Tuple&) {});
  ASSERT_TRUE(r.Insert({I(1), I(11)}).ok());
  ASSERT_TRUE(*r.Remove({I(1), I(10)}));

  std::vector<Tuple> found;
  r.LookupEqual(0, I(1), [&](const Tuple& t) { found.push_back(t); });
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0][1], I(11));
}

TEST(RelationTest, ScanEqualMatchesLookupEqual) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kInt}, {"y", ValueKind::kInt}}));
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(r.Insert({I(i % 7), I(i)}).ok());
  }
  for (int64_t key = 0; key < 7; ++key) {
    size_t scan_hits = 0, lookup_hits = 0;
    r.ScanEqual(0, I(key), [&](const Tuple&) { ++scan_hits; });
    r.LookupEqual(0, I(key), [&](const Tuple&) { ++lookup_hits; });
    EXPECT_EQ(scan_hits, lookup_hits) << "key " << key;
  }
}

TEST(RelationTest, ClearEmptiesDataAndIndexes) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kInt}}));
  ASSERT_TRUE(r.Insert({I(1)}).ok());
  r.LookupEqual(0, I(1), [](const Tuple&) {});
  r.Clear();
  EXPECT_TRUE(r.empty());
  int hits = 0;
  r.LookupEqual(0, I(1), [&](const Tuple&) { ++hits; });
  EXPECT_EQ(hits, 0);
}

TEST(RelationTest, SortedTuplesIsCanonical) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kInt}}));
  for (int64_t v : {5, 1, 3, 2, 4}) ASSERT_TRUE(r.Insert({I(v)}).ok());
  std::vector<Tuple> sorted = r.SortedTuples();
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_TRUE(sorted[i - 1] < sorted[i]);
  }
}

TEST(CatalogTest, DeclareAndGet) {
  Catalog c("alice");
  ASSERT_TRUE(c.Declare(Decl("r", "alice", {{"x", ValueKind::kInt}})).ok());
  EXPECT_TRUE(c.Has("r"));
  EXPECT_NE(c.Get("r"), nullptr);
  EXPECT_EQ(c.Get("missing"), nullptr);
}

TEST(CatalogTest, DeclareForOtherPeerRejected) {
  Catalog c("alice");
  EXPECT_FALSE(c.Declare(Decl("r", "bob", {{"x", ValueKind::kInt}})).ok());
}

TEST(CatalogTest, RedeclareSameSchemaIsIdempotent) {
  Catalog c("alice");
  RelationDecl d = Decl("r", "alice", {{"x", ValueKind::kInt}});
  ASSERT_TRUE(c.Declare(d).ok());
  EXPECT_TRUE(c.Declare(d).ok());
}

TEST(CatalogTest, RedeclareDifferentSchemaRejected) {
  Catalog c("alice");
  ASSERT_TRUE(c.Declare(Decl("r", "alice", {{"x", ValueKind::kInt}})).ok());
  EXPECT_EQ(c.Declare(Decl("r", "alice", {{"x", ValueKind::kString}})).code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, AutoDeclareOnInsert) {
  Catalog c("alice");
  Result<bool> r = c.InsertFact(Fact("fresh", "alice", {I(1), S("a")}));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(*r);
  const Relation* rel = c.Get("fresh");
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->kind(), RelationKind::kExtensional);
  EXPECT_EQ(rel->arity(), 2u);
}

TEST(CatalogTest, AutoDeclareDisabled) {
  Catalog c("alice", /*auto_declare=*/false);
  EXPECT_EQ(c.InsertFact(Fact("fresh", "alice", {I(1)})).status().code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, InsertForWrongPeerRejected) {
  Catalog c("alice");
  EXPECT_FALSE(c.InsertFact(Fact("r", "bob", {I(1)})).ok());
}

TEST(CatalogTest, SnapshotReturnsSortedFacts) {
  Catalog c("alice");
  ASSERT_TRUE(c.InsertFact(Fact("r", "alice", {I(2)})).ok());
  ASSERT_TRUE(c.InsertFact(Fact("r", "alice", {I(1)})).ok());
  Result<std::vector<Fact>> snap = c.Snapshot("r");
  ASSERT_TRUE(snap.ok());
  ASSERT_EQ(snap->size(), 2u);
  EXPECT_EQ((*snap)[0].args[0], I(1));
  EXPECT_EQ((*snap)[1].args[0], I(2));
}

TEST(CatalogTest, ClearIntensionalLeavesExtensionalAlone) {
  Catalog c("alice");
  ASSERT_TRUE(c.Declare(Decl("base", "alice", {{"x", ValueKind::kInt}})).ok());
  ASSERT_TRUE(c.Declare(Decl("view", "alice", {{"x", ValueKind::kInt}},
                             RelationKind::kIntensional)).ok());
  ASSERT_TRUE(c.Get("base")->Insert({I(1)}).ok());
  ASSERT_TRUE(c.Get("view")->Insert({I(1)}).ok());
  c.ClearIntensional();
  EXPECT_EQ(c.Get("base")->size(), 1u);
  EXPECT_EQ(c.Get("view")->size(), 0u);
}

TEST(CatalogTest, TotalTuplesSumsAllRelations) {
  Catalog c("alice");
  ASSERT_TRUE(c.InsertFact(Fact("a", "alice", {I(1)})).ok());
  ASSERT_TRUE(c.InsertFact(Fact("b", "alice", {I(1)})).ok());
  ASSERT_TRUE(c.InsertFact(Fact("b", "alice", {I(2)})).ok());
  EXPECT_EQ(c.TotalTuples(), 3u);
}

// Property sweep: insert N distinct tuples, then every one is found by
// point lookup on each column, for various N.
class RelationSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(RelationSweepTest, AllTuplesFindableByEveryColumn) {
  int n = GetParam();
  Relation r(Decl("r", "p", {{"a", ValueKind::kInt}, {"b", ValueKind::kInt}}));
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(r.Insert({I(i), I(i * 2)}).ok());
  }
  for (int64_t i = 0; i < n; ++i) {
    bool found0 = false, found1 = false;
    r.LookupEqual(0, I(i), [&](const Tuple& t) {
      found0 |= t[1] == I(i * 2);
    });
    r.LookupEqual(1, I(i * 2), [&](const Tuple& t) {
      found1 |= t[0] == I(i);
    });
    EXPECT_TRUE(found0) << "column 0, key " << i;
    EXPECT_TRUE(found1) << "column 1, key " << i * 2;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RelationSweepTest,
                         ::testing::Values(1, 2, 16, 100, 1000));

}  // namespace
}  // namespace wdl
