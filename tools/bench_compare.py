#!/usr/bin/env python3
"""Compare two merged bench baselines (schema wdl-bench-baseline-v1).

Usage:
  bench_compare.py BASELINE.json CURRENT.json [--suite SUITE] [--fail-below R]

Prints a per-benchmark throughput table: baseline and current wall time
per iteration, and the throughput ratio current-vs-baseline (>1 means
the current tree is faster: throughput in tuples/sec scales as
1/real_time for a fixed workload). A per-suite and overall geometric
mean follows. Exit status is 0 unless --fail-below is given and the
overall geomean ratio falls below it (informational by default: bench
boxes are noisy, especially CI runners).
"""

import argparse
import json
import math
import sys


def load_suites(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "wdl-bench-baseline-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    suites = {}
    for suite, report in doc.get("suites", {}).items():
        for bench in report.get("benchmarks", []):
            if bench.get("run_type") != "iteration":
                continue
            suites.setdefault(suite, {})[bench["name"]] = bench["real_time"]
    return suites


def fmt_time(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f}{unit}"
    return f"{ns:.0f}ns"


def geomean(ratios):
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--suite", action="append",
                        help="restrict to these suites (repeatable)")
    parser.add_argument("--fail-below", type=float, default=None,
                        help="exit 1 when the overall geomean throughput "
                             "ratio is below this value")
    args = parser.parse_args()

    base = load_suites(args.baseline)
    curr = load_suites(args.current)
    suites = sorted(set(base) & set(curr))
    if args.suite:
        suites = [s for s in suites if s in set(args.suite)]
    if not suites:
        sys.exit("no common suites to compare")

    name_w = max((len(n) for s in suites for n in base[s]), default=30) + 2
    all_ratios = []
    print(f"{'benchmark':<{name_w}} {'baseline':>10} {'current':>10} "
          f"{'throughput':>11}")
    print("-" * (name_w + 34))
    for suite in suites:
        common = sorted(set(base[suite]) & set(curr[suite]))
        only_base = sorted(set(base[suite]) - set(curr[suite]))
        only_curr = sorted(set(curr[suite]) - set(base[suite]))
        if not common and not only_base and not only_curr:
            continue
        ratios = []
        print(f"[{suite}]")
        for name in common:
            b, c = base[suite][name], curr[suite][name]
            ratio = b / c if c > 0 else float("inf")
            ratios.append(ratio)
            all_ratios.append(ratio)
            print(f"  {name:<{name_w - 2}} {fmt_time(b):>10} "
                  f"{fmt_time(c):>10} {ratio:>10.2f}x")
        for name in only_base:
            print(f"  {name:<{name_w - 2}} {'(removed)':>10}")
        for name in only_curr:
            print(f"  {name:<{name_w - 2}} {'(new)':>32}")
        if ratios:
            print(f"  {'geomean':<{name_w - 2}} {'':>21} "
                  f"{geomean(ratios):>10.2f}x")
    if all_ratios:
        overall = geomean(all_ratios)
        print("-" * (name_w + 34))
        print(f"{'overall geomean':<{name_w}} {'':>21} {overall:>10.2f}x "
              f"({len(all_ratios)} benchmarks)")
        if args.fail_below is not None and overall < args.fail_below:
            print(f"FAIL: overall geomean {overall:.2f}x is below "
                  f"{args.fail_below:.2f}x")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
