#include "storage/tuple.h"

namespace wdl {

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace wdl
