#ifndef WDL_PARSER_LEXER_H_
#define WDL_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace wdl {

enum class TokenKind : uint8_t {
  kIdent,     // pictures, sigmod, not (keywords are idents)
  kVariable,  // $x  (text holds "x")
  kString,    // "sea.jpg" (text holds the unescaped contents)
  kInt,       // 42, -7
  kDouble,    // 3.14, -2.5e3
  kBlob,      // 0xdeadbeef (text holds the decoded bytes)
  kAt,        // @
  kLParen,    // (
  kRParen,    // )
  kComma,     // ,
  kSemicolon, // ;
  kColonDash, // :-
  kColon,     // :
  kMinus,     // -  (deletion-rule head marker)
  kEof,
};

const char* TokenKindToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;    // identifier / variable / string / blob payload
  int64_t int_value = 0;
  double double_value = 0.0;
  int line = 1;        // 1-based position of the first character
  int column = 1;

  std::string Describe() const;
};

/// Tokenizes a full WebdamLog source string. Comments (`// …`, `# …`,
/// `/* … */`) are skipped. Errors carry line:column positions.
Result<std::vector<Token>> Tokenize(std::string_view src);

}  // namespace wdl

#endif  // WDL_PARSER_LEXER_H_
