#ifndef WDL_BASE_RNG_H_
#define WDL_BASE_RNG_H_

#include <cstdint>

namespace wdl {

/// Deterministic SplitMix64 generator. Used by the network simulator and
/// workload generators so every experiment is reproducible from a seed.
/// Deliberately not std::mt19937: SplitMix64's output for a given seed is
/// trivially portable and two orders of magnitude less state to reason
/// about in tests.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  uint64_t NextBelow(uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = -bound % bound;
    while (true) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool NextBool(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

 private:
  uint64_t state_;
};

}  // namespace wdl

#endif  // WDL_BASE_RNG_H_
