// wdl_shell — a scriptable WebdamLog console, the programmatic
// counterpart of the demo's Web UI (§4: audience members "launch their
// own autonomous Wepic peers ... and interact with their peer through a
// UI", including a Query tab for ad-hoc queries).
//
// Reads commands from a script file (or stdin with no argument):
//
//   peer NAME                   create a peer
//   trust NAME ORIGIN           NAME's gate trusts ORIGIN
//   program NAME ... end        load WebdamLog statements at NAME
//   insert FACT;                insert a ground fact at its peer
//   delete FACT;                remove a ground fact from its peer
//   run                         run the system to quiescence
//   query NAME BODY;            ad-hoc query at NAME (§4 Query tab)
//   show NAME RELATION          print a relation
//   rules NAME                  print NAME's program (Figure 3 view)
//   pending NAME                print NAME's pending delegations
//   approve NAME KEY            approve a pending delegation
//   save NAME FILE              dump NAME's durable state to FILE
//   stats                       network statistics
//   # comment / blank lines     ignored
//
// Run:  ./build/examples/wdl_shell            (demo script built in)
//       ./build/examples/wdl_shell my.wdlsh

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "parser/parser.h"
#include "runtime/query.h"
#include "runtime/system.h"

namespace {

constexpr char kDemoScript[] = R"(# Built-in demo: two peers, delegation, a query.
peer alice
peer bob
trust bob alice
trust alice bob
program alice
  collection ext contacts@alice(peer: string);
  collection int news@alice(headline: string);
  fact contacts@alice("bob");
  rule news@alice($h) :- contacts@alice($p), posts@$p($h);
end
program bob
  collection ext posts@bob(headline: string);
  fact posts@bob("bob got a dog");
end
run
show alice news
rules bob
insert posts@bob("bob wrote a paper");
run
show alice news
query alice contacts@alice($p), posts@$p($h);
stats
)";

std::string FirstWord(std::string* line) {
  std::istringstream in(*line);
  std::string word;
  in >> word;
  std::string rest;
  std::getline(in, rest);
  size_t start = rest.find_first_not_of(" \t");
  *line = start == std::string::npos ? "" : rest.substr(start);
  return word;
}

}  // namespace

int main(int argc, char** argv) {
  std::istringstream demo(kDemoScript);
  std::ifstream file;
  std::istream* in = &demo;
  if (argc > 1 && std::string(argv[1]) == "-") {
    in = &std::cin;  // pipe a script in
  } else if (argc > 1) {
    file.open(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    in = &file;
  } else {
    std::printf("(no script given; running the built-in demo)\n");
  }

  wdl::System system;
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& msg) {
    std::fprintf(stderr, "line %d: %s\n", lineno, msg.c_str());
  };

  while (std::getline(*in, line)) {
    ++lineno;
    std::string rest = line;
    std::string cmd = FirstWord(&rest);
    if (cmd.empty() || cmd[0] == '#') continue;

    if (cmd == "peer") {
      system.CreatePeer(rest);
      std::printf("created peer %s\n", rest.c_str());
    } else if (cmd == "trust") {
      std::string who = FirstWord(&rest);
      wdl::Peer* p = system.GetPeer(who);
      if (p == nullptr) { fail("no peer " + who); continue; }
      p->gate().TrustPeer(rest);
    } else if (cmd == "program") {
      std::string peer_name = rest;
      wdl::Peer* p = system.GetPeer(peer_name);
      if (p == nullptr) { fail("no peer " + peer_name); continue; }
      std::string source, stmt_line;
      while (std::getline(*in, stmt_line)) {
        ++lineno;
        std::string probe = stmt_line;
        if (FirstWord(&probe) == "end") break;
        source += stmt_line + "\n";
      }
      wdl::Status st = p->LoadProgramText(source);
      if (!st.ok()) fail(st.ToString());
    } else if (cmd == "insert" || cmd == "delete") {
      wdl::Result<wdl::Fact> fact = wdl::ParseFact(rest);
      if (!fact.ok()) { fail(fact.status().ToString()); continue; }
      wdl::Peer* p = system.GetPeer(fact->peer);
      if (p == nullptr) { fail("no peer " + fact->peer); continue; }
      wdl::Result<bool> r = cmd == "insert" ? p->Insert(*fact)
                                            : p->Remove(*fact);
      if (!r.ok()) fail(r.status().ToString());
    } else if (cmd == "run") {
      wdl::Result<int> rounds = system.RunUntilQuiescent();
      if (rounds.ok()) {
        std::printf("quiescent after %d rounds\n", *rounds);
      } else {
        fail(rounds.status().ToString());
      }
    } else if (cmd == "query") {
      std::string peer_name = FirstWord(&rest);
      if (!rest.empty() && rest.back() == ';') rest.pop_back();
      wdl::Result<wdl::QueryResult> r =
          wdl::RunQuery(&system, peer_name, rest);
      if (r.ok()) {
        std::printf("query at %s: %s", peer_name.c_str(),
                    r->ToString().c_str());
      } else {
        fail(r.status().ToString());
      }
    } else if (cmd == "show") {
      std::string peer_name = FirstWord(&rest);
      wdl::Peer* p = system.GetPeer(peer_name);
      if (p == nullptr) { fail("no peer " + peer_name); continue; }
      std::printf("%s", p->RenderRelation(rest).c_str());
    } else if (cmd == "rules") {
      wdl::Peer* p = system.GetPeer(rest);
      if (p == nullptr) { fail("no peer " + rest); continue; }
      std::printf("%s", p->RenderProgramView().c_str());
    } else if (cmd == "pending") {
      wdl::Peer* p = system.GetPeer(rest);
      if (p == nullptr) { fail("no peer " + rest); continue; }
      std::printf("%s", p->gate().RenderPending().c_str());
    } else if (cmd == "approve") {
      std::string peer_name = FirstWord(&rest);
      wdl::Peer* p = system.GetPeer(peer_name);
      if (p == nullptr) { fail("no peer " + peer_name); continue; }
      wdl::Status st = p->ApproveDelegation(std::stoull(rest));
      if (!st.ok()) fail(st.ToString());
    } else if (cmd == "save") {
      std::string peer_name = FirstWord(&rest);
      wdl::Peer* p = system.GetPeer(peer_name);
      if (p == nullptr) { fail("no peer " + peer_name); continue; }
      std::ofstream out(rest);
      out << p->engine().DumpAsProgramText();
      std::printf("saved %s to %s\n", peer_name.c_str(), rest.c_str());
    } else if (cmd == "stats") {
      const wdl::NetworkStats& s = system.network().stats();
      std::printf("network: %llu msgs, %llu bytes, %llu dropped\n",
                  static_cast<unsigned long long>(s.messages_submitted),
                  static_cast<unsigned long long>(s.bytes_sent),
                  static_cast<unsigned long long>(s.messages_dropped));
    } else {
      fail("unknown command '" + cmd + "'");
    }
  }
  return 0;
}
