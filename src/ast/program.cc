#include "ast/program.h"

namespace wdl {

const char* RelationKindToString(RelationKind kind) {
  switch (kind) {
    case RelationKind::kExtensional: return "ext";
    case RelationKind::kIntensional: return "int";
  }
  return "?";
}

std::string RelationDecl::ToString() const {
  std::string out = "collection ";
  out += RelationKindToString(kind);
  out += " ";
  out += relation + "@" + peer + "(";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns[i].name;
    if (columns[i].type != ValueKind::kAny) {
      out += ": ";
      out += ValueKindToString(columns[i].type);
    }
  }
  out += ")";
  return out;
}

std::string Program::ToString() const {
  std::string out;
  for (const RelationDecl& d : declarations) {
    out += d.ToString();
    out += ";\n";
  }
  for (const Fact& f : facts) {
    out += "fact ";
    out += f.ToString();
    out += ";\n";
  }
  for (const Rule& r : rules) {
    out += "rule ";
    out += r.ToString();
    out += ";\n";
  }
  return out;
}

}  // namespace wdl
