#include "parser/lexer.h"

#include <cctype>
#include <cstdlib>

#include "base/string_util.h"

namespace wdl {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kVariable: return "variable";
    case TokenKind::kString: return "string";
    case TokenKind::kInt: return "integer";
    case TokenKind::kDouble: return "double";
    case TokenKind::kBlob: return "blob";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kColonDash: return "':-'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kIdent: return "identifier '" + text + "'";
    case TokenKind::kVariable: return "variable '$" + text + "'";
    case TokenKind::kString: return "string \"" + EscapeString(text) + "\"";
    case TokenKind::kInt: return "integer " + std::to_string(int_value);
    case TokenKind::kDouble: return "double " + std::to_string(double_value);
    case TokenKind::kBlob: return "blob (" + std::to_string(text.size()) + " bytes)";
    default: return TokenKindToString(kind);
  }
}

namespace {

// Cursor over the source with line/column tracking.
class Scanner {
 public:
  explicit Scanner(std::string_view src) : src_(src) {}

  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek() const { return AtEnd() ? '\0' : src_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  int line() const { return line_; }
  int column() const { return column_; }

  Status Error(const std::string& msg) const {
    return Status::ParseError(StrFormat("%d:%d: %s", line_, column_,
                                        msg.c_str()));
  }

 private:
  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view src) {
  Scanner s(src);
  std::vector<Token> tokens;

  auto push = [&](TokenKind kind, int line, int column) -> Token& {
    Token t;
    t.kind = kind;
    t.line = line;
    t.column = column;
    tokens.push_back(std::move(t));
    return tokens.back();
  };

  while (!s.AtEnd()) {
    char c = s.Peek();
    int line = s.line(), column = s.column();

    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      s.Advance();
      continue;
    }
    // Comments.
    if (c == '#') {
      while (!s.AtEnd() && s.Peek() != '\n') s.Advance();
      continue;
    }
    if (c == '/' && s.PeekAt(1) == '/') {
      while (!s.AtEnd() && s.Peek() != '\n') s.Advance();
      continue;
    }
    if (c == '/' && s.PeekAt(1) == '*') {
      s.Advance();
      s.Advance();
      bool closed = false;
      while (!s.AtEnd()) {
        if (s.Peek() == '*' && s.PeekAt(1) == '/') {
          s.Advance();
          s.Advance();
          closed = true;
          break;
        }
        s.Advance();
      }
      if (!closed) return s.Error("unterminated block comment");
      continue;
    }

    // Punctuation.
    if (c == '@') { s.Advance(); push(TokenKind::kAt, line, column); continue; }
    if (c == '(') { s.Advance(); push(TokenKind::kLParen, line, column); continue; }
    if (c == ')') { s.Advance(); push(TokenKind::kRParen, line, column); continue; }
    if (c == ',') { s.Advance(); push(TokenKind::kComma, line, column); continue; }
    if (c == ';') { s.Advance(); push(TokenKind::kSemicolon, line, column); continue; }
    if (c == ':') {
      s.Advance();
      if (s.Peek() == '-') {
        s.Advance();
        push(TokenKind::kColonDash, line, column);
      } else {
        push(TokenKind::kColon, line, column);
      }
      continue;
    }

    // Variables: $name or anonymous $_.
    if (c == '$') {
      s.Advance();
      std::string name;
      while (!s.AtEnd() && IsIdentChar(s.Peek())) name += s.Advance();
      if (name.empty()) return s.Error("'$' must be followed by a variable name");
      Token& t = push(TokenKind::kVariable, line, column);
      t.text = std::move(name);
      continue;
    }

    // Strings.
    if (c == '"') {
      s.Advance();
      std::string raw;
      bool closed = false;
      while (!s.AtEnd()) {
        char d = s.Advance();
        if (d == '"') { closed = true; break; }
        if (d == '\\') {
          if (s.AtEnd()) return s.Error("unterminated escape in string");
          raw += '\\';
          raw += s.Advance();
          continue;
        }
        if (d == '\n') return s.Error("newline in string literal");
        raw += d;
      }
      if (!closed) return s.Error("unterminated string literal");
      std::string unescaped;
      if (!UnescapeString(raw, &unescaped)) {
        return s.Error("invalid escape sequence in string literal");
      }
      Token& t = push(TokenKind::kString, line, column);
      t.text = std::move(unescaped);
      continue;
    }

    // A bare '-' (not starting a numeric literal) marks a deletion-rule
    // head.
    if (c == '-' && !IsDigit(s.PeekAt(1))) {
      s.Advance();
      push(TokenKind::kMinus, line, column);
      continue;
    }

    // Numbers and blobs. `0x...` is a blob literal; numbers may carry a
    // leading '-' and a fractional/exponent part.
    if (IsDigit(c) || (c == '-' && IsDigit(s.PeekAt(1)))) {
      if (c == '0' && (s.PeekAt(1) == 'x' || s.PeekAt(1) == 'X')) {
        s.Advance();
        s.Advance();
        std::string bytes;
        std::string hex;
        while (!s.AtEnd() && HexNibble(s.Peek()) >= 0) hex += s.Advance();
        if (hex.empty()) return s.Error("empty blob literal after 0x");
        if (hex.size() % 2 != 0) {
          return s.Error("blob literal must have an even number of hex digits");
        }
        for (size_t i = 0; i < hex.size(); i += 2) {
          bytes += static_cast<char>((HexNibble(hex[i]) << 4) |
                                     HexNibble(hex[i + 1]));
        }
        Token& t = push(TokenKind::kBlob, line, column);
        t.text = std::move(bytes);
        continue;
      }
      std::string num;
      if (c == '-') num += s.Advance();
      bool is_double = false;
      while (!s.AtEnd() && IsDigit(s.Peek())) num += s.Advance();
      if (s.Peek() == '.' && IsDigit(s.PeekAt(1))) {
        is_double = true;
        num += s.Advance();
        while (!s.AtEnd() && IsDigit(s.Peek())) num += s.Advance();
      }
      if (s.Peek() == 'e' || s.Peek() == 'E') {
        char next = s.PeekAt(1);
        char next2 = s.PeekAt(2);
        if (IsDigit(next) ||
            ((next == '+' || next == '-') && IsDigit(next2))) {
          is_double = true;
          num += s.Advance();
          if (s.Peek() == '+' || s.Peek() == '-') num += s.Advance();
          while (!s.AtEnd() && IsDigit(s.Peek())) num += s.Advance();
        }
      }
      if (is_double) {
        Token& t = push(TokenKind::kDouble, line, column);
        t.double_value = std::strtod(num.c_str(), nullptr);
      } else {
        errno = 0;
        char* end = nullptr;
        long long v = std::strtoll(num.c_str(), &end, 10);
        if (errno == ERANGE) return s.Error("integer literal out of range: " + num);
        Token& t = push(TokenKind::kInt, line, column);
        t.int_value = static_cast<int64_t>(v);
      }
      continue;
    }

    // Identifiers (including keywords `collection`, `ext`, `int`, `fact`,
    // `rule`, `not` — keyword-ness is decided by the parser).
    if (IsIdentStart(c)) {
      std::string name;
      while (!s.AtEnd() && IsIdentChar(s.Peek())) name += s.Advance();
      Token& t = push(TokenKind::kIdent, line, column);
      t.text = std::move(name);
      continue;
    }

    return s.Error(StrFormat("unexpected character '%c'", c));
  }

  push(TokenKind::kEof, s.line(), s.column());
  return tokens;
}

}  // namespace wdl
