// Adversarial coverage of the wire codec: the TCP transport feeds
// DecodeEnvelope bytes straight off a socket, so every truncation,
// bit flip, and hostile count must come back as a decode Status —
// never a crash, never an allocation sized by attacker-controlled
// counts. This suite runs under ASan/UBSan in CI.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/wire.h"
#include "parser/parser.h"

#include "support/builders.h"

namespace wdl {
namespace {

using test::I;
using test::S;

// One representative envelope per MessageType, with nonempty payloads
// so truncation can land inside every field kind — plus the delta
// variants the differential protocol actually sends (heartbeat and
// snapshot), whose flag/version fields have their own layout.
std::vector<Envelope> AllMessageKinds() {
  std::vector<Envelope> out;
  auto push = [&out](Message m) {
    Envelope e;
    e.from = "emilien";
    e.to = "jules";
    e.seq = 7;
    e.message = std::move(m);
    out.push_back(std::move(e));
  };

  push(Message::FactInserts({Fact("pictures", "jules", {I(1), S("sea.jpg")}),
                             Fact("pictures", "jules", {I(2), S("")})}));
  push(Message::FactDeletes({Fact("pictures", "jules", {I(1), S("sea.jpg")})}));

  DerivedSet set;
  set.target_peer = "jules";
  set.relation = "attendeePictures";
  set.tuples = {{I(1), S("a")}, {I(2), Value::MakeBlob(std::string(3, '\0'))}};
  push(Message::MakeDerivedSet(set));

  DerivedDelta delta;
  delta.target_peer = "jules";
  delta.relation = "attendeePictures";
  delta.base_version = 3;
  delta.version = 4;
  delta.inserts = {{I(5), S("new.jpg")}};
  delta.deletes = {{I(1), S("sea.jpg")}};
  push(Message::MakeDerivedDelta(delta));

  DerivedDelta heartbeat;  // version-only: no tuples at all
  heartbeat.target_peer = "jules";
  heartbeat.relation = "attendeePictures";
  heartbeat.base_version = 4;
  heartbeat.version = 4;
  push(Message::MakeDerivedDelta(heartbeat));

  DerivedDelta snapshot;  // full contribution, repairs a gap
  snapshot.target_peer = "jules";
  snapshot.relation = "attendeePictures";
  snapshot.version = 9;
  snapshot.snapshot = true;
  snapshot.inserts = {{I(1), S("sea.jpg")}, {I(5), S("new.jpg")}};
  push(Message::MakeDerivedDelta(snapshot));

  Result<Rule> rule = ParseRule(
      "attendeePictures@jules($id, $n) :- pictures@emilien($id, $n)");
  EXPECT_TRUE(rule.ok()) << rule.status();
  Delegation d;
  d.origin_peer = "jules";
  d.target_peer = "emilien";
  d.origin_rule_hash = 0xfeed;
  d.rule = *rule;
  push(Message::DelegationInstall(d));
  push(Message::DelegationRetract(d.Key()));

  push(Message::Hello("emilien"));
  push(Message::ResyncRequest("attendeePictures"));
  push(Message::StreamForget("attendeePictures"));
  return out;
}

TEST(WireCorruptionTest, TruncationAtEveryOffsetFailsCleanly) {
  for (const Envelope& e : AllMessageKinds()) {
    const std::string bytes = EncodeEnvelope(e);
    SCOPED_TRACE(e.message.ToString());
    ASSERT_FALSE(bytes.empty());
    // The codec is symmetric — decode consumes exactly what encode
    // produced — so every strict prefix must run out of input and fail
    // with a Status, not crash or return a half-built envelope.
    for (size_t len = 0; len < bytes.size(); ++len) {
      Result<Envelope> r =
          DecodeEnvelope(std::string_view(bytes.data(), len));
      EXPECT_FALSE(r.ok()) << "prefix of " << len << " of " << bytes.size()
                           << " bytes decoded";
    }
    // And the untruncated frame still decodes.
    EXPECT_TRUE(DecodeEnvelope(bytes).ok());
  }
}

TEST(WireCorruptionTest, ByteFlipsNeverCrash) {
  const uint8_t kMasks[] = {0x01, 0x80, 0xff};
  for (const Envelope& e : AllMessageKinds()) {
    const std::string bytes = EncodeEnvelope(e);
    SCOPED_TRACE(e.message.ToString());
    for (size_t off = 0; off < bytes.size(); ++off) {
      for (uint8_t mask : kMasks) {
        std::string corrupt = bytes;
        corrupt[off] = static_cast<char>(corrupt[off] ^ mask);
        // A flip may still yield a *different valid* envelope (e.g.
        // inside string payload bytes); the contract is only that
        // decoding terminates without crashing or over-allocating.
        Result<Envelope> r = DecodeEnvelope(corrupt);
        if (r.ok()) {
          // Whatever decoded must survive a re-encode round trip.
          EXPECT_FALSE(EncodeEnvelope(*r).empty());
        }
      }
    }
  }
}

TEST(WireCorruptionTest, HostileCountsFailBeforeAllocating) {
  // Overwrite every aligned and unaligned 4-byte window with
  // 0xFFFFFFFF. Wherever that lands on a count or length field, the
  // decoder must reject it against the bytes actually remaining —
  // fast, and without reserving 4G elements first. ASan (and the test
  // timeout) would catch an allocation-by-count regression.
  for (const Envelope& e : AllMessageKinds()) {
    const std::string bytes = EncodeEnvelope(e);
    SCOPED_TRACE(e.message.ToString());
    for (size_t off = 0; off + 4 <= bytes.size(); ++off) {
      std::string corrupt = bytes;
      std::memset(corrupt.data() + off, 0xff, 4);
      // A window landing inside string *content* can still decode to a
      // valid envelope; one landing on any count or length must fail.
      // Either way the call terminates promptly — the property this
      // sweep enforces (with ASan and the test timeout as referees).
      Result<Envelope> r = DecodeEnvelope(corrupt);
      if (r.ok()) {
        EXPECT_FALSE(EncodeEnvelope(*r).empty());
      }
    }
  }
}

TEST(WireCorruptionTest, CountWithinGlobalCapStillBoundedByFrameSize) {
  // A fact-batch count of 0xFFFFFF sits under the global kMaxCount cap
  // (1<<24), so only the remaining-bytes bound can stop it. The frame
  // ends right after the count: minimum fact size makes the claim
  // impossible and decode must fail without looping 16M times.
  Envelope e;
  e.from = "emilien";
  e.to = "jules";
  e.message = Message::FactInserts({});
  std::string bytes = EncodeEnvelope(e);
  // The facts count is the trailing u32 of an empty batch.
  ASSERT_GE(bytes.size(), 4u);
  bytes[bytes.size() - 4] = static_cast<char>(0xff);
  bytes[bytes.size() - 3] = static_cast<char>(0xff);
  bytes[bytes.size() - 2] = static_cast<char>(0xff);
  bytes[bytes.size() - 1] = 0x00;
  Result<Envelope> r = DecodeEnvelope(bytes);
  EXPECT_FALSE(r.ok());
}

TEST(WireCorruptionTest, NestedCountsBoundedTupleArityAndRuleBody) {
  // Same bound one level down: a tuple claiming 2^20 values inside an
  // otherwise-valid derived set, and a rule body claiming 2^20 atoms.
  DerivedSet set;
  set.target_peer = "jules";
  set.relation = "r";
  set.tuples = {{I(1)}};
  Envelope e;
  e.from = "a";
  e.to = "b";
  e.message = Message::MakeDerivedSet(set);
  std::string bytes = EncodeEnvelope(e);
  // The single tuple is the tail: u32 arity=1 then one int value. Blow
  // up the arity.
  const size_t arity_off = bytes.size() - (4 + 1 + 8);  // arity|tag|i64
  bytes[arity_off + 0] = 0x00;
  bytes[arity_off + 1] = 0x00;
  bytes[arity_off + 2] = 0x10;  // 0x00100000 = 2^20 values claimed
  bytes[arity_off + 3] = 0x00;
  EXPECT_FALSE(DecodeEnvelope(bytes).ok());

  WireEncoder enc;
  Result<Rule> rule = ParseRule("a@p($x) :- b@p($x)");
  ASSERT_TRUE(rule.ok());
  enc.PutRule(*rule);
  std::string rule_bytes = enc.TakeBuffer();
  // Body atom count is encoded after the head atom; rather than chase
  // the offset, scan every u32 window equal to 1 and bump it — one of
  // them is the body count, and none of the inflated variants may make
  // the decoder loop or allocate past the frame.
  for (size_t off = 0; off + 4 <= rule_bytes.size(); ++off) {
    uint32_t v;
    std::memcpy(&v, rule_bytes.data() + off, 4);
    if (v != 1) continue;
    std::string corrupt = rule_bytes;
    corrupt[off + 2] = 0x10;  // -> 0x00100001
    WireDecoder dec(corrupt);
    (void)dec.GetRule();  // must terminate; outcome may be ok or error
  }
}

}  // namespace
}  // namespace wdl
