#ifndef WDL_RUNTIME_SYSTEM_H_
#define WDL_RUNTIME_SYSTEM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "base/thread_pool.h"
#include "net/network.h"
#include "runtime/peer.h"
#include "runtime/wrapper.h"

namespace wdl {

/// Process-wide default for SystemOptions::worker_threads: the
/// WDL_WORKER_THREADS environment variable (read once), else 1. Lets CI
/// drive existing suites through the parallel stage scheduler without
/// touching their code.
int DefaultWorkerThreads();

struct SystemOptions {
  uint64_t network_seed = 42;
  LinkConfig default_link;
  /// When > 0, every N-th round each peer submits version-only
  /// heartbeats for its outbound contribution streams (see
  /// Peer::MakeHeartbeats). Bounds the staleness window of a stream
  /// that went silent right after a dropped frame to roughly one
  /// interval plus a resync round trip. 0 disables (the default:
  /// change-triggered repair only, as before).
  int heartbeat_interval_rounds = 0;
  /// Inter-peer parallelism (DESIGN.md §8): peers with pending work run
  /// their stages concurrently on a persistent worker pool, this many
  /// ways. Peers are share-nothing except the thread-safe Symbol table,
  /// so stages need no locking; outbound envelopes are buffered per
  /// peer and submitted serially afterwards in peer-name order — the
  /// exact order the serial loop submits in, so the simulated network's
  /// RNG stream (and hence every fingerprint) is identical to
  /// worker_threads == 1. 1 (the default unless WDL_WORKER_THREADS
  /// overrides it) preserves today's exact code path as the oracle.
  int worker_threads = DefaultWorkerThreads();
  /// When true (production), peers are created as lightweight slots —
  /// the per-peer Engine materializes on first fact, first rule, or
  /// first inbound frame that carries engine work — so an idle peer
  /// costs ~O(100) bytes and one process hosts 100k–1M simulated peers
  /// (DESIGN.md §9). False allocates every peer's engine eagerly at
  /// CreatePeer — the pre-lazy runtime, kept as the fingerprint oracle
  /// (the use_compiled_plans / use_incremental_maintenance pattern).
  bool lazy_peer_state = true;
  /// Durability root (DESIGN.md §11). Non-empty makes every peer this
  /// System creates durable, with its data dir at
  /// `durability_root/<peer name>` (unless the peer's own
  /// PeerOptions::durability.dir is already set). Empty (the default)
  /// keeps peers fully in-memory. Per-peer knobs (fsync policy,
  /// snapshot interval) come from `durability`, applied to every
  /// created peer.
  std::string durability_root;
  DurabilityOptions durability;
};

/// Counters for one RunRound call.
struct RoundReport {
  int round = 0;
  size_t envelopes_delivered = 0;
  size_t stages_run = 0;
  size_t envelopes_sent = 0;
  // Propagation-plane telemetry: what this round's stages *submitted*,
  // by protocol. Message/tuple counts are pre-loss (a dropped or
  // partitioned envelope is still counted — the stage did the work);
  // bytes_sent is what actually reached the wire, so the two bases
  // differ under lossy links.
  size_t full_set_messages = 0;    // kDerivedSet envelopes
  size_t delta_messages = 0;       // kDerivedDelta envelopes
  size_t resync_requests = 0;      // kResyncRequest envelopes
  size_t heartbeats_sent = 0;      // version-only stream heartbeats
  uint64_t derived_tuples_sent = 0;  // tuples in full sets
  uint64_t delta_tuples_sent = 0;    // inserts+deletes in deltas
  uint64_t bytes_sent = 0;           // wire bytes submitted this round
};

/// The multi-peer coordinator: owns the transport and the peers, and
/// advances global time in rounds. One round =
///   deliver due messages -> handle link resets -> sync wrappers ->
///   run a stage at every peer with pending work -> submit their
///   outbound envelopes.
///
/// Peers whose engines have nothing to do are skipped, so a converged
/// system does no work — quiescence is "no peer has pending work and
/// nothing is in flight".
///
/// The default transport is the deterministic SimulatedNetwork; an
/// asynchronous transport (TcpNetwork) can be injected instead, in
/// which case quiescence is a *local* judgment (remote peers of other
/// processes may still be computing) and convergence is detected by
/// staying idle — see RunUntilIdle.
class System {
 public:
  explicit System(SystemOptions options = {});
  /// Hosts this system's peers on an injected transport (e.g. a
  /// started TcpNetwork). The network must outlive nothing — the
  /// system takes ownership.
  System(std::unique_ptr<Network> network, SystemOptions options = {});

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Creates and registers a peer. The registry itself is the discovery
  /// control plane (PeerNames()); peers learn of each other from
  /// traffic (envelope senders, Hello messages) — deliberately *not* by
  /// an all-pairs known-peer exchange here, which would cost O(peers²)
  /// work and memory at registration and cap the system at toy sizes.
  Peer* CreatePeer(const std::string& name, PeerOptions options = {});
  Peer* GetPeer(const std::string& name);
  const Peer* GetPeer(const std::string& name) const;
  std::vector<std::string> PeerNames() const;
  size_t PeerCount() const { return peers_.size(); }

  /// Peers whose engine has been materialized (== PeerCount() when
  /// lazy_peer_state is off). The instrument behind "an idle peer costs
  /// ~nothing": a 100k-peer system with 200 active users holds 200
  /// engines.
  size_t MaterializedPeerCount() const;

  /// Approximate resident bytes of per-peer fixed bookkeeping for
  /// `name` (registry map node + Peer::ApproxIdleBytes; engine state
  /// excluded — it scales with data, not peer count). 0 for unknown
  /// peers. The idle-peer regression ceiling is asserted against this.
  size_t ApproxPeerBytes(const std::string& name) const;

  /// The simulated network, for tests and benches that configure links
  /// and read deterministic stats. Only valid when the system was built
  /// with the default (simulated) transport.
  SimulatedNetwork& network();
  const SimulatedNetwork& network() const;
  /// The transport, whichever kind it is.
  Network& transport() { return *network_; }
  const Network& transport() const { return *network_; }

  /// Attaches a wrapper to its peer (calls Setup immediately; Sync runs
  /// each round before the stages).
  Status AttachWrapper(std::unique_ptr<Wrapper> wrapper);

  /// Advances time by one round and runs it.
  RoundReport RunRound();

  /// Runs rounds until the system is quiescent; returns the number of
  /// rounds it took, or FailedPrecondition after `max_rounds`.
  Result<int> RunUntilQuiescent(int max_rounds = 1000);

  /// Real-time variant for asynchronous transports: runs rounds on the
  /// wall clock, sleeping `sleep_ms` between empty ones, until the
  /// system has been locally quiescent for `idle_rounds` consecutive
  /// polls (heartbeat traffic does not count as work). Returns rounds
  /// run, or FailedPrecondition after `max_wall_ms`. "Idle" is local:
  /// a remote process may still send us something later.
  Result<int> RunUntilIdle(int idle_rounds, int max_wall_ms,
                           int sleep_ms = 1);

  bool IsQuiescent() const;

  double now() const { return now_; }
  int rounds_run() const { return rounds_run_; }

 private:
  void SyncWrappers();

  SystemOptions options_;
  std::unique_ptr<Network> network_;
  // Inter-peer stage pool; created lazily on the first round that has
  // two or more pending peers and worker_threads > 1.
  std::unique_ptr<ThreadPool> pool_;
  SimulatedNetwork* simulated_ = nullptr;  // network_ when simulated
  std::map<std::string, std::unique_ptr<Peer>> peers_;
  std::vector<std::unique_ptr<Wrapper>> wrappers_;
  double now_ = 0.0;
  int rounds_run_ = 0;
};

}  // namespace wdl

#endif  // WDL_RUNTIME_SYSTEM_H_
