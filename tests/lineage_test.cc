#include "analysis/lineage.h"

#include <gtest/gtest.h>

#include "acl/provenance_policy.h"
#include "parser/parser.h"

#include "support/builders.h"

namespace wdl {
namespace {

using test::R;

TEST(LineageTest, DirectDependency) {
  LineageMap lineage = ComputeLineage({R("v@a($x) :- base@a($x)")});
  EXPECT_EQ(LineageOf(lineage, "v@a"),
            (std::set<std::string>{"base@a"}));
}

TEST(LineageTest, TransitiveThroughDerivedPredicates) {
  LineageMap lineage = ComputeLineage({
      R("v1@a($x) :- base1@a($x)"),
      R("v2@a($x) :- v1@a($x), base2@b($x)"),
  });
  EXPECT_EQ(LineageOf(lineage, "v2@a"),
            (std::set<std::string>{"base1@a", "base2@b"}));
}

TEST(LineageTest, RecursionTerminatesAndCollectsBases) {
  LineageMap lineage = ComputeLineage({
      R("tc@a($x, $y) :- edge@a($x, $y)"),
      R("tc@a($x, $z) :- tc@a($x, $y), edge@a($y, $z)"),
  });
  EXPECT_EQ(LineageOf(lineage, "tc@a"),
            (std::set<std::string>{"edge@a"}));
}

TEST(LineageTest, MutualRecursion) {
  LineageMap lineage = ComputeLineage({
      R("even@a($x) :- zero@a($x)"),
      R("even@a($x) :- pred@a($x, $y), odd@a($y)"),
      R("odd@a($x) :- pred@a($x, $y), even@a($y)"),
  });
  EXPECT_EQ(LineageOf(lineage, "odd@a"),
            (std::set<std::string>{"pred@a", "zero@a"}));
  EXPECT_EQ(LineageOf(lineage, "even@a"),
            (std::set<std::string>{"pred@a", "zero@a"}));
}

TEST(LineageTest, VariableLocationBecomesWildcard) {
  LineageMap lineage = ComputeLineage({
      R("v@a($x) :- sel@a($p), data@$p($x)"),
  });
  EXPECT_EQ(LineageOf(lineage, "v@a"),
            (std::set<std::string>{"sel@a", kWildcardPredicate}));
}

TEST(LineageTest, NegatedAtomsCountAsDependencies) {
  LineageMap lineage = ComputeLineage({
      R("v@a($x) :- all@a($x), not secret@a($x)"),
  });
  EXPECT_EQ(LineageOf(lineage, "v@a"),
            (std::set<std::string>{"all@a", "secret@a"}));
}

TEST(LineageTest, UndefinedPredicateHasEmptyLineage) {
  LineageMap lineage = ComputeLineage({R("v@a($x) :- base@a($x)")});
  EXPECT_TRUE(LineageOf(lineage, "ghost@a").empty());
}

TEST(ProvenancePolicyTest, ViewReadableOnlyWithAllBases) {
  // The paper's Wepic publication pipeline: who may read the Facebook
  // view is derived from who may read the sources.
  std::vector<Rule> rules = {
      R("wall@fb($i) :- pictures@sigmod($i), authorized@emilien($i)"),
  };
  AccessPolicy policy;
  ASSERT_TRUE(DerivePolicyFromRules(rules, &policy).ok());

  // Owners come from predicate ids.
  EXPECT_EQ(policy.OwnerOf("pictures@sigmod"), "sigmod");
  EXPECT_EQ(policy.OwnerOf("wall@fb"), "fb");

  EXPECT_FALSE(policy.CheckRead("wall@fb", "jules"));
  ASSERT_TRUE(policy.Grant("pictures@sigmod", "sigmod", "jules",
                           Privilege::kRead).ok());
  EXPECT_FALSE(policy.CheckRead("wall@fb", "jules"));  // one base only
  ASSERT_TRUE(policy.Grant("authorized@emilien", "emilien", "jules",
                           Privilege::kRead).ok());
  EXPECT_TRUE(policy.CheckRead("wall@fb", "jules"));
}

TEST(ProvenancePolicyTest, WildcardLineageAlwaysDenies) {
  std::vector<Rule> rules = {
      R("v@a($x) :- sel@a($p), data@$p($x)"),
  };
  AccessPolicy policy;
  ASSERT_TRUE(DerivePolicyFromRules(rules, &policy).ok());
  // Even with read on the concrete base, the wildcard blocks: the view
  // may read anything, so nobody but the owner passes.
  ASSERT_TRUE(policy.Grant("sel@a", "a", "reader", Privilege::kRead).ok());
  EXPECT_FALSE(policy.CheckRead("v@a", "reader"));
  // The owner still reads (ownership short-circuits).
  EXPECT_TRUE(policy.CheckRead("v@a", "a"));
}

TEST(ProvenancePolicyTest, DeclassificationStillWorksOnDerivedPolicy) {
  std::vector<Rule> rules = {R("v@a($x) :- secret@a($x)")};
  AccessPolicy policy;
  ASSERT_TRUE(DerivePolicyFromRules(rules, &policy).ok());
  EXPECT_FALSE(policy.CheckRead("v@a", "public"));
  ASSERT_TRUE(policy.Declassify("v@a", "a", "public").ok());
  EXPECT_TRUE(policy.CheckRead("v@a", "public"));
}

TEST(PredicateOwnerTest, ParsesPeerComponent) {
  EXPECT_EQ(PredicateOwner("pictures@sigmod"), "sigmod");
  EXPECT_EQ(PredicateOwner("noat"), "");
}

}  // namespace
}  // namespace wdl
