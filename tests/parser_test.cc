#include "parser/parser.h"

#include <gtest/gtest.h>

namespace wdl {
namespace {

TEST(ParserTest, ParsesGroundFact) {
  Result<Fact> r = ParseFact(R"(pictures@sigmod(32, "sea.jpg", "Emilien"))");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->relation, "pictures");
  EXPECT_EQ(r->peer, "sigmod");
  ASSERT_EQ(r->args.size(), 3u);
  EXPECT_EQ(r->args[0], Value::Int(32));
  EXPECT_EQ(r->args[1], Value::String("sea.jpg"));
}

TEST(ParserTest, FactKeywordIsOptional) {
  EXPECT_TRUE(ParseFact("fact f@p(1);").ok());
  EXPECT_TRUE(ParseFact("f@p(1)").ok());
}

TEST(ParserTest, NonGroundFactIsRejected) {
  EXPECT_FALSE(ParseFact("f@p($x)").ok());
}

TEST(ParserTest, ZeroArityAtomParses) {
  Result<Fact> r = ParseFact("ping@alice()");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->arity(), 0u);
}

TEST(ParserTest, ParsesPaperSelectionRule) {
  // Verbatim rule shape from §3 of the paper.
  Result<Rule> r = ParseRule(
      "attendeePictures@Jules($id, $name, $owner, $data) :- "
      "selectedAttendee@Jules($attendee), "
      "pictures@$attendee($id, $name, $owner, $data)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->head.relation.name(), "attendeePictures");
  EXPECT_EQ(r->head.peer.name(), "Jules");
  ASSERT_EQ(r->body.size(), 2u);
  EXPECT_TRUE(r->body[1].peer.is_variable());
  EXPECT_EQ(r->body[1].peer.var(), "attendee");
}

TEST(ParserTest, ParsesRelationAndPeerVariablesInHead) {
  // The paper's transfer rule: both relation and peer of the head are
  // variables.
  Result<Rule> r = ParseRule(
      "$protocol@$attendee($attendee, $name, $id, $owner) :- "
      "selectedAttendee@Jules($attendee), "
      "communicate@$attendee($protocol), "
      "selectedPictures@Jules($name, $id, $owner)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->head.relation.is_variable());
  EXPECT_TRUE(r->head.peer.is_variable());
}

TEST(ParserTest, ParsesNegatedAtoms) {
  Result<Rule> r = ParseRule(
      "missing@p($x) :- all@p($x), not present@p($x)");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->body.size(), 2u);
  EXPECT_FALSE(r->body[0].negated);
  EXPECT_TRUE(r->body[1].negated);
}

TEST(ParserTest, NegatedHeadIsRejected) {
  EXPECT_FALSE(ParseRule("not h@p($x) :- b@p($x)").ok());
}

TEST(ParserTest, BareIdentifierArgumentGivesHelpfulError) {
  Result<Fact> r = ParseFact("f@p(sea)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("quote"), std::string::npos);
}

TEST(ParserTest, ParsesCollectionDeclarations) {
  Result<Program> r = ParseProgram(
      "collection ext persistent pictures@alice(id: int, name: string, "
      "data: blob);\n"
      "collection int view@alice(x, y: double);");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->declarations.size(), 2u);
  const RelationDecl& d0 = r->declarations[0];
  EXPECT_EQ(d0.kind, RelationKind::kExtensional);
  EXPECT_EQ(d0.columns[0].type, ValueKind::kInt);
  EXPECT_EQ(d0.columns[2].type, ValueKind::kBlob);
  const RelationDecl& d1 = r->declarations[1];
  EXPECT_EQ(d1.kind, RelationKind::kIntensional);
  EXPECT_EQ(d1.columns[0].type, ValueKind::kAny);
  EXPECT_EQ(d1.columns[1].type, ValueKind::kDouble);
}

TEST(ParserTest, UnknownColumnTypeIsError) {
  EXPECT_FALSE(ParseProgram("collection ext r@p(x: float);").ok());
}

TEST(ParserTest, MissingSemicolonBetweenStatementsIsError) {
  EXPECT_FALSE(ParseProgram("f@p(1)\ng@p(2);").ok());
}

TEST(ParserTest, MixedProgramParses) {
  Result<Program> r = ParseProgram(R"(
    # The Wepic attendee program, abridged.
    collection ext pictures@jules(id: int, name: string);
    fact pictures@jules(1, "dinner.jpg");
    rule copy@sigmod($i, $n) :- pictures@jules($i, $n);
  )");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->declarations.size(), 1u);
  EXPECT_EQ(r->facts.size(), 1u);
  EXPECT_EQ(r->rules.size(), 1u);
}

TEST(ParserTest, AnonymousVariablesAreRenamedApart) {
  Result<Rule> r = ParseRule("h@p($x) :- b@p($x, $_, $_)");
  ASSERT_TRUE(r.ok()) << r.status();
  const Atom& b = r->body[0];
  ASSERT_EQ(b.args.size(), 3u);
  EXPECT_TRUE(b.args[1].is_variable());
  EXPECT_TRUE(b.args[2].is_variable());
  EXPECT_NE(b.args[1].var(), b.args[2].var())
      << "two $_ must not join with each other";
}

TEST(ParserTest, ParseAtomStandalone) {
  Result<Atom> r = ParseAtom("not rate@$owner($id, 5)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->negated);
  EXPECT_TRUE(r->peer.is_variable());
  EXPECT_EQ(r->args[1], Term::Constant(Value::Int(5)));
}

TEST(ParserTest, TrailingGarbageAfterAtomIsError) {
  EXPECT_FALSE(ParseAtom("a@p(1) extra").ok());
}

TEST(ParserTest, ErrorsIncludePosition) {
  Result<Program> r = ParseProgram("f@p(1);\nbad@(2);");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("2:"), std::string::npos)
      << r.status();
}

TEST(ParserTest, NumericValueKindsSurvive) {
  Result<Fact> r = ParseFact("f@p(1, 2.5, \"s\", 0xff)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->args[0].is_int());
  EXPECT_TRUE(r->args[1].is_double());
  EXPECT_TRUE(r->args[2].is_string());
  EXPECT_TRUE(r->args[3].is_blob());
}

// Round-trip property: parse(print(parse(text))) == parse(text), over
// every statement type the grammar supports.
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, PrintThenReparseIsIdentity) {
  Result<Program> first = ParseProgram(GetParam());
  ASSERT_TRUE(first.ok()) << first.status();
  std::string printed = first->ToString();
  Result<Program> second = ParseProgram(printed);
  ASSERT_TRUE(second.ok()) << second.status() << "\nprinted:\n" << printed;
  EXPECT_EQ(second->declarations, first->declarations);
  EXPECT_EQ(second->facts, first->facts);
  EXPECT_EQ(second->rules, first->rules);
}

INSTANTIATE_TEST_SUITE_P(
    Statements, RoundTripTest,
    ::testing::Values(
        "collection ext pictures@alice(id: int, name: string, d: blob);",
        "collection int view@alice(x, y);",
        R"(fact pictures@sigmod(32, "sea.jpg", "Emilien", 0x64);)",
        R"(fact weird@p("quote\"backslash\\newline\n");)",
        "fact nums@p(-5, 2.5, -0.125, 1e3);",
        "rule a@p($x) :- b@p($x);",
        "rule a@p($x, $y) :- b@p($x), c@p($x, $y);",
        "rule r@p($x) :- s@p($x), not t@p($x);",
        "rule $r@$q($x) :- names@p($r), peers@p($q), data@p($x);",
        "rule attendeePictures@Jules($id, $n, $o, $d) :- "
        "selectedAttendee@Jules($a), pictures@$a($id, $n, $o, $d);",
        "fact empty@p();"));

}  // namespace
}  // namespace wdl
