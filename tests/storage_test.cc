#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/relation.h"

#include "support/builders.h"

namespace wdl {
namespace {

using test::I;
using test::S;

RelationDecl Decl(const std::string& rel, const std::string& peer,
                  std::vector<ColumnSpec> cols,
                  RelationKind kind = RelationKind::kExtensional) {
  RelationDecl d;
  d.relation = rel;
  d.peer = peer;
  d.kind = kind;
  d.columns = std::move(cols);
  return d;
}

TEST(RelationTest, InsertAndContains) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kInt}}));
  Result<bool> inserted = r.Insert({I(1)});
  ASSERT_TRUE(inserted.ok());
  EXPECT_TRUE(*inserted);
  EXPECT_TRUE(r.Contains({I(1)}));
  EXPECT_FALSE(r.Contains({I(2)}));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, DuplicateInsertReturnsFalse) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kInt}}));
  ASSERT_TRUE(*r.Insert({I(1)}));
  Result<bool> again = r.Insert({I(1)});
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, ArityViolationRejected) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kInt}}));
  EXPECT_EQ(r.Insert({I(1), I(2)}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(RelationTest, TypeViolationRejected) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kInt}}));
  EXPECT_EQ(r.Insert({S("nope")}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RelationTest, AnyColumnsAcceptMixedKinds) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kAny}}));
  EXPECT_TRUE(r.Insert({I(1)}).ok());
  EXPECT_TRUE(r.Insert({S("s")}).ok());
  EXPECT_TRUE(r.Insert({Value::Double(0.5)}).ok());
  EXPECT_EQ(r.size(), 3u);
}

TEST(RelationTest, RemoveWorksAndReportsAbsence) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kInt}}));
  ASSERT_TRUE(r.Insert({I(1)}).ok());
  EXPECT_TRUE(*r.Remove({I(1)}));
  EXPECT_FALSE(*r.Remove({I(1)}));
  EXPECT_EQ(r.size(), 0u);
}

TEST(RelationTest, LookupEqualBuildsIndexLazily) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kInt}, {"y", ValueKind::kInt}}));
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(r.Insert({I(i % 10), I(i)}).ok());
  }
  EXPECT_FALSE(r.HasIndex(0));
  int hits = 0;
  r.LookupEqual(0, I(3), [&](const Tuple& t) {
    EXPECT_EQ(t[0], I(3));
    ++hits;
  });
  EXPECT_EQ(hits, 10);
  EXPECT_TRUE(r.HasIndex(0));
}

TEST(RelationTest, IndexStaysConsistentAcrossInsertAndRemove) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kInt}, {"y", ValueKind::kInt}}));
  ASSERT_TRUE(r.Insert({I(1), I(10)}).ok());
  // Build the index, then mutate.
  r.LookupEqual(0, I(1), [](const Tuple&) {});
  ASSERT_TRUE(r.Insert({I(1), I(11)}).ok());
  ASSERT_TRUE(*r.Remove({I(1), I(10)}));

  std::vector<Tuple> found;
  r.LookupEqual(0, I(1), [&](const Tuple& t) { found.push_back(t); });
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0][1], I(11));
}

TEST(RelationTest, ScanEqualMatchesLookupEqual) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kInt}, {"y", ValueKind::kInt}}));
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(r.Insert({I(i % 7), I(i)}).ok());
  }
  for (int64_t key = 0; key < 7; ++key) {
    size_t scan_hits = 0, lookup_hits = 0;
    r.ScanEqual(0, I(key), [&](const Tuple&) { ++scan_hits; });
    r.LookupEqual(0, I(key), [&](const Tuple&) { ++lookup_hits; });
    EXPECT_EQ(scan_hits, lookup_hits) << "key " << key;
  }
}

TEST(RelationTest, ClearEmptiesDataAndIndexes) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kInt}}));
  ASSERT_TRUE(r.Insert({I(1)}).ok());
  r.LookupEqual(0, I(1), [](const Tuple&) {});
  r.Clear();
  EXPECT_TRUE(r.empty());
  int hits = 0;
  r.LookupEqual(0, I(1), [&](const Tuple&) { ++hits; });
  EXPECT_EQ(hits, 0);
}

TEST(RelationTest, SortedTuplesIsCanonical) {
  Relation r(Decl("r", "p", {{"x", ValueKind::kInt}}));
  for (int64_t v : {5, 1, 3, 2, 4}) ASSERT_TRUE(r.Insert({I(v)}).ok());
  std::vector<Tuple> sorted = r.SortedTuples();
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_TRUE(sorted[i - 1] < sorted[i]);
  }
}

TEST(CatalogTest, DeclareAndGet) {
  Catalog c("alice");
  ASSERT_TRUE(c.Declare(Decl("r", "alice", {{"x", ValueKind::kInt}})).ok());
  EXPECT_TRUE(c.Has("r"));
  EXPECT_NE(c.Get("r"), nullptr);
  EXPECT_EQ(c.Get("missing"), nullptr);
}

TEST(CatalogTest, DeclareForOtherPeerRejected) {
  Catalog c("alice");
  EXPECT_FALSE(c.Declare(Decl("r", "bob", {{"x", ValueKind::kInt}})).ok());
}

TEST(CatalogTest, RedeclareSameSchemaIsIdempotent) {
  Catalog c("alice");
  RelationDecl d = Decl("r", "alice", {{"x", ValueKind::kInt}});
  ASSERT_TRUE(c.Declare(d).ok());
  EXPECT_TRUE(c.Declare(d).ok());
}

TEST(CatalogTest, RedeclareDifferentSchemaRejected) {
  Catalog c("alice");
  ASSERT_TRUE(c.Declare(Decl("r", "alice", {{"x", ValueKind::kInt}})).ok());
  EXPECT_EQ(c.Declare(Decl("r", "alice", {{"x", ValueKind::kString}})).code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, AutoDeclareOnInsert) {
  Catalog c("alice");
  Result<bool> r = c.InsertFact(Fact("fresh", "alice", {I(1), S("a")}));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(*r);
  const Relation* rel = c.Get("fresh");
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->kind(), RelationKind::kExtensional);
  EXPECT_EQ(rel->arity(), 2u);
}

TEST(CatalogTest, AutoDeclareDisabled) {
  Catalog c("alice", /*auto_declare=*/false);
  EXPECT_EQ(c.InsertFact(Fact("fresh", "alice", {I(1)})).status().code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, InsertForWrongPeerRejected) {
  Catalog c("alice");
  EXPECT_FALSE(c.InsertFact(Fact("r", "bob", {I(1)})).ok());
}

TEST(CatalogTest, SnapshotReturnsSortedFacts) {
  Catalog c("alice");
  ASSERT_TRUE(c.InsertFact(Fact("r", "alice", {I(2)})).ok());
  ASSERT_TRUE(c.InsertFact(Fact("r", "alice", {I(1)})).ok());
  Result<std::vector<Fact>> snap = c.Snapshot("r");
  ASSERT_TRUE(snap.ok());
  ASSERT_EQ(snap->size(), 2u);
  EXPECT_EQ((*snap)[0].args[0], I(1));
  EXPECT_EQ((*snap)[1].args[0], I(2));
}

TEST(CatalogTest, ForEachRelationDrivesSelectiveClear) {
  // The stage-start view reset is an engine policy now: the engine
  // clears views through ForEachRelation (recompute oracle) or leaves
  // them resident (incremental maintenance). The catalog itself only
  // offers the traversal.
  Catalog c("alice");
  ASSERT_TRUE(c.Declare(Decl("base", "alice", {{"x", ValueKind::kInt}})).ok());
  ASSERT_TRUE(c.Declare(Decl("view", "alice", {{"x", ValueKind::kInt}},
                             RelationKind::kIntensional)).ok());
  ASSERT_TRUE(c.Get("base")->Insert({I(1)}).ok());
  ASSERT_TRUE(c.Get("view")->Insert({I(1)}).ok());
  c.ForEachRelation([](Relation& rel) {
    if (rel.kind() == RelationKind::kIntensional) rel.Clear();
  });
  EXPECT_EQ(c.Get("base")->size(), 1u);
  EXPECT_EQ(c.Get("view")->size(), 0u);
}

TEST(CatalogTest, TotalTuplesSumsAllRelations) {
  Catalog c("alice");
  ASSERT_TRUE(c.InsertFact(Fact("a", "alice", {I(1)})).ok());
  ASSERT_TRUE(c.InsertFact(Fact("b", "alice", {I(1)})).ok());
  ASSERT_TRUE(c.InsertFact(Fact("b", "alice", {I(2)})).ok());
  EXPECT_EQ(c.TotalTuples(), 3u);
}

// Property sweep: insert N distinct tuples, then every one is found by
// point lookup on each column, for various N.
class RelationSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(RelationSweepTest, AllTuplesFindableByEveryColumn) {
  int n = GetParam();
  Relation r(Decl("r", "p", {{"a", ValueKind::kInt}, {"b", ValueKind::kInt}}));
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(r.Insert({I(i), I(i * 2)}).ok());
  }
  for (int64_t i = 0; i < n; ++i) {
    bool found0 = false, found1 = false;
    r.LookupEqual(0, I(i), [&](const Tuple& t) {
      found0 |= t[1] == I(i * 2);
    });
    r.LookupEqual(1, I(i * 2), [&](const Tuple& t) {
      found1 |= t[0] == I(i);
    });
    EXPECT_TRUE(found0) << "column 0, key " << i;
    EXPECT_TRUE(found1) << "column 1, key " << i * 2;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RelationSweepTest,
                         ::testing::Values(1, 2, 16, 100, 1000));

// The column indexes (and the tuple set itself) are keyed by value
// *hash* only; distinct values may collide. Forced-equal hashes drive
// both values into the same index chain and hash bucket, and every
// lookup path must still discriminate by equality. (Forced hashes must
// be consistent on both sides of any comparison — see Value::Hash.)
TEST(RelationTest, HashCollidingValuesNeverCrossMatch) {
  const uint64_t kSharedHash = 0x1234567890abcdefull;
  Value alpha = Value::WithHashForTesting(S("alpha"), kSharedHash);
  Value beta = Value::WithHashForTesting(S("beta"), kSharedHash);
  ASSERT_EQ(alpha.Hash(), beta.Hash());
  ASSERT_FALSE(alpha == beta);

  Relation r(Decl("r", "p",
                  {{"k", ValueKind::kString}, {"v", ValueKind::kInt}}));
  ASSERT_TRUE(*r.Insert({alpha, I(1)}));
  ASSERT_TRUE(*r.Insert({beta, I(2)}));
  EXPECT_EQ(r.size(), 2u);

  // Indexed lookup on the colliding column surfaces only exact matches.
  std::vector<Tuple> hits;
  r.LookupEqual(0, alpha, [&](const Tuple& t) { hits.push_back(t); });
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0][1], I(1));
  hits.clear();
  r.LookupEqual(0, beta, [&](const Tuple& t) { hits.push_back(t); });
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0][1], I(2));

  // Scan path agrees.
  hits.clear();
  r.ScanEqual(0, alpha, [&](const Tuple& t) { hits.push_back(t); });
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0][1], I(1));

  // Containment discriminates within the shared hash bucket.
  EXPECT_TRUE(r.Contains({alpha, I(1)}));
  EXPECT_TRUE(r.Contains({beta, I(2)}));
  EXPECT_FALSE(r.Contains({alpha, I(2)}));

  // Removing one colliding tuple must not disturb the other's index
  // chain entry.
  ASSERT_TRUE(*r.Remove({alpha, I(1)}));
  hits.clear();
  r.LookupEqual(0, beta, [&](const Tuple& t) { hits.push_back(t); });
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0][1], I(2));
  hits.clear();
  r.LookupEqual(0, alpha, [&](const Tuple& t) { hits.push_back(t); });
  EXPECT_TRUE(hits.empty());
}

// HashIndex itself: chains per hash key, removal unlinks exactly one
// entry, and entry storage is recycled across remove/insert cycles.
TEST(HashIndexTest, ChainsRemoveAndRecycle) {
  // Backing tuples; the index stores pointers.
  std::vector<Tuple> tuples;
  tuples.reserve(300);
  for (int64_t i = 0; i < 300; ++i) tuples.push_back({I(i)});

  HashIndex index;
  for (int i = 0; i < 200; ++i) {
    index.Insert(static_cast<uint64_t>(i % 50), &tuples[i]);  // 4-long chains
  }
  size_t count = 0;
  index.ForEachWithHash(7, [&](const Tuple*) { ++count; });
  EXPECT_EQ(count, 4u);
  index.ForEachWithHash(777, [&](const Tuple*) { FAIL(); });

  index.Remove(7, &tuples[7]);
  count = 0;
  bool saw_removed = false;
  index.ForEachWithHash(7, [&](const Tuple* t) {
    ++count;
    saw_removed |= t == &tuples[7];
  });
  EXPECT_EQ(count, 3u);
  EXPECT_FALSE(saw_removed);

  // Empty a whole chain, then reuse its key.
  for (int i : {3, 53, 103, 153}) index.Remove(3, &tuples[i]);
  index.ForEachWithHash(3, [&](const Tuple*) { FAIL(); });
  index.Insert(3, &tuples[250]);
  count = 0;
  index.ForEachWithHash(3, [&](const Tuple* t) {
    ++count;
    EXPECT_EQ(t, &tuples[250]);
  });
  EXPECT_EQ(count, 1u);
}

TEST(HashIndexTest, InsertRemoveChurnDoesNotRatchetCapacity) {
  // Sustained churn of mostly-distinct keys leaves dead key slots
  // behind; rehashes must size from *live* keys so capacity stays
  // bounded by the live working set, not by total operations ever.
  Tuple t{I(0)};
  HashIndex index;
  for (uint64_t i = 0; i < 100000; ++i) {
    index.Insert(i, &t);
    index.Remove(i, &t);
    ASSERT_LE(index.SlotCapacityForTesting(), 64u) << "at op " << i;
  }
  // Still fully functional afterwards.
  index.Insert(42, &t);
  size_t hits = 0;
  index.ForEachWithHash(42, [&](const Tuple*) { ++hits; });
  EXPECT_EQ(hits, 1u);
}

TEST(HashIndexTest, SurvivesRehashGrowth) {
  std::vector<Tuple> tuples;
  tuples.reserve(5000);
  for (int64_t i = 0; i < 5000; ++i) tuples.push_back({I(i)});
  HashIndex index;  // no Reserve: forces repeated rehashing
  for (int i = 0; i < 5000; ++i) {
    index.Insert(static_cast<uint64_t>(i), &tuples[i]);
  }
  for (int i = 0; i < 5000; i += 97) {
    const Tuple* hit = nullptr;
    index.ForEachWithHash(static_cast<uint64_t>(i),
                          [&](const Tuple* t) { hit = t; });
    EXPECT_EQ(hit, &tuples[i]) << i;
  }
}

}  // namespace
}  // namespace wdl
