#ifndef WDL_TESTS_SUPPORT_COUNTERS_H_
#define WDL_TESTS_SUPPORT_COUNTERS_H_

#include <ostream>
#include <string>

#include "net/network.h"

namespace wdl {
namespace test {

/// Snapshot of the simulated network's counters, with subtraction, so
/// tests can assert on the traffic caused by one step instead of the
/// cumulative totals since system construction:
///
///   NetworkCounters before(system.network());
///   ... do the thing ...
///   auto delta = NetworkCounters(system.network()) - before;
///   EXPECT_EQ(delta.messages_submitted, 2u);
struct NetworkCounters {
  uint64_t messages_submitted = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;
  uint64_t messages_partitioned = 0;
  uint64_t bytes_sent = 0;

  NetworkCounters() = default;
  explicit NetworkCounters(const NetworkStats& stats);
  explicit NetworkCounters(const SimulatedNetwork& network);

  NetworkCounters operator-(const NetworkCounters& earlier) const;
  bool operator==(const NetworkCounters& other) const = default;

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const NetworkCounters& c);

}  // namespace test
}  // namespace wdl

#endif  // WDL_TESTS_SUPPORT_COUNTERS_H_
