#include <gtest/gtest.h>

#include "ast/program.h"
#include "parser/parser.h"

namespace wdl {
namespace {

TEST(FactTest, ToStringMatchesSurfaceSyntax) {
  Fact f("pictures", "sigmod",
         {Value::Int(32), Value::String("sea.jpg"), Value::String("Emilien")});
  EXPECT_EQ(f.ToString(), R"(pictures@sigmod(32, "sea.jpg", "Emilien"))");
  EXPECT_EQ(f.PredicateId(), "pictures@sigmod");
}

TEST(FactTest, OrderingIsPeerRelationArgs) {
  Fact a("r", "a", {Value::Int(1)});
  Fact b("r", "b", {Value::Int(0)});
  Fact c("s", "a", {Value::Int(0)});
  EXPECT_LT(a, b);  // peer first
  EXPECT_LT(a, c);  // then relation
  Fact a2("r", "a", {Value::Int(2)});
  EXPECT_LT(a, a2);  // then args
}

TEST(FactTest, HashAgreesWithEquality) {
  Fact a("r", "p", {Value::Int(1)});
  Fact b("r", "p", {Value::Int(1)});
  Fact c("r", "q", {Value::Int(1)});
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), c.Hash());
}

TEST(AtomTest, GroundnessAndConversion) {
  Result<Atom> ground = ParseAtom("r@p(1, \"s\")");
  ASSERT_TRUE(ground.ok());
  EXPECT_TRUE(ground->IsGround());
  Fact f = ground->ToFact();
  EXPECT_EQ(f.relation, "r");
  EXPECT_EQ(f.args[1], Value::String("s"));

  Result<Atom> open = ParseAtom("r@$p(1)");
  ASSERT_TRUE(open.ok());
  EXPECT_FALSE(open->IsGround());
  EXPECT_FALSE(open->HasConcreteLocation());
}

TEST(AtomTest, CollectVariablesIncludesLocationVars) {
  Result<Atom> a = ParseAtom("$r@$p($x, 3, $y)");
  ASSERT_TRUE(a.ok());
  std::set<std::string> vars;
  a->CollectVariables(&vars);
  EXPECT_EQ(vars, (std::set<std::string>{"r", "p", "x", "y"}));
}

TEST(RuleTest, ToStringRoundTripsThroughParser) {
  Result<Rule> r = ParseRule(
      "attendeePictures@Jules($id, $n) :- "
      "selectedAttendee@Jules($a), pictures@$a($id, $n), "
      "not hidden@Jules($id)");
  ASSERT_TRUE(r.ok());
  Result<Rule> again = ParseRule(r->ToString());
  ASSERT_TRUE(again.ok()) << again.status() << "\n" << r->ToString();
  EXPECT_EQ(*again, *r);
}

TEST(RuleTest, HashIsContentBasedAndStable) {
  Result<Rule> r1 = ParseRule("h@p($x) :- b@p($x)");
  Result<Rule> r2 = ParseRule("h@p($x)  :-  b@p($x)");  // whitespace only
  Result<Rule> r3 = ParseRule("h@p($y) :- b@p($y)");    // alpha-renamed
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_EQ(r1->Hash(), r2->Hash());
  // Alpha-renaming changes the hash: delegation identity is syntactic,
  // which is what retraction matching needs.
  EXPECT_NE(r1->Hash(), r3->Hash());
}

TEST(RuleTest, VariablesAndPositiveBodyVariables) {
  Result<Rule> r = ParseRule(
      "h@p($x) :- a@p($x), not b@p($x), c@$q($y), names@p($q)");
  // Reorder to be safe: names must bind $q before c@$q uses it.
  r = ParseRule("h@p($x) :- a@p($x), not b@p($x), names@p($q), c@$q($y)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Variables(), (std::set<std::string>{"x", "q", "y"}));
  EXPECT_EQ(r->PositiveBodyVariables(),
            (std::set<std::string>{"x", "q", "y"}));
}

TEST(ProgramTest, ToStringListsDeclsFactsRules) {
  Result<Program> p = ParseProgram(R"(
    collection ext r@p(x: int);
    fact r@p(1);
    rule v@p($x) :- r@p($x);
  )");
  ASSERT_TRUE(p.ok());
  std::string s = p->ToString();
  EXPECT_NE(s.find("collection ext r@p(x: int);"), std::string::npos);
  EXPECT_NE(s.find("fact r@p(1);"), std::string::npos);
  EXPECT_NE(s.find("rule v@p($x) :- r@p($x);"), std::string::npos);
}

TEST(RelationDeclTest, ToStringOmitsAnyTypes) {
  RelationDecl d;
  d.relation = "r";
  d.peer = "p";
  d.kind = RelationKind::kIntensional;
  d.columns = {{"x", ValueKind::kAny}, {"y", ValueKind::kInt}};
  EXPECT_EQ(d.ToString(), "collection int r@p(x, y: int)");
}

TEST(TermTest, EqualityAndHash) {
  Term v1 = Term::Variable("x");
  Term v2 = Term::Variable("x");
  Term c1 = Term::Constant(Value::String("x"));
  EXPECT_EQ(v1, v2);
  EXPECT_NE(v1, c1);  // a variable is never a constant
  EXPECT_EQ(v1.Hash(), v2.Hash());
  EXPECT_NE(v1.Hash(), c1.Hash());
}

TEST(SymTermTest, NameVersusVariable) {
  SymTerm name = SymTerm::Name("pictures");
  SymTerm var = SymTerm::Variable("pictures");
  EXPECT_NE(name, var);
  EXPECT_EQ(name.ToString(), "pictures");
  EXPECT_EQ(var.ToString(), "$pictures");
}

}  // namespace
}  // namespace wdl
