#ifndef WDL_ANALYSIS_LINEAGE_H_
#define WDL_ANALYSIS_LINEAGE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ast/rule.h"
#include "base/result.h"

namespace wdl {

/// Predicate-level lineage: for every predicate defined by some rule
/// head, the set of *base* predicates (those never appearing in a head)
/// it transitively depends on. This is the provenance the paper's
/// sketched access-control model keys on: "a default access control
/// policy that is derived automatically from the provenance of the
/// base relations" (§2).
///
/// Atoms whose relation or peer position is a variable contribute the
/// wildcard predicate "*" to the lineage — a conservative marker that
/// the view may read *anything*, which policy derivation treats as
/// maximally restrictive.
using LineageMap = std::map<std::string, std::set<std::string>>;

/// The wildcard predicate used for variable-located atoms.
inline constexpr char kWildcardPredicate[] = "*";

/// Computes the lineage of every head predicate in `rules`. Negated
/// atoms count as dependencies like positive ones (seeing that a tuple
/// is *absent* also leaks information about the base relation).
LineageMap ComputeLineage(const std::vector<Rule>& rules);

/// Convenience: lineage of one predicate, empty set when it is not
/// defined by any rule.
std::set<std::string> LineageOf(const LineageMap& lineage,
                                const std::string& predicate);

}  // namespace wdl

#endif  // WDL_ANALYSIS_LINEAGE_H_
