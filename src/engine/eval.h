#ifndef WDL_ENGINE_EVAL_H_
#define WDL_ENGINE_EVAL_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ast/fact.h"
#include "ast/rule.h"
#include "base/symbol.h"
#include "engine/binding.h"
#include "engine/delegation.h"
#include "engine/plan.h"
#include "storage/catalog.h"
#include "storage/hash_index.h"

namespace wdl {

/// The Δ of one relation: tuples newly derived in the previous fixpoint
/// iteration, with lazily built per-column hash indexes. A Δ-restricted
/// atom whose access-path column is bound probes the index instead of
/// scanning the whole set — the difference between O(|outer|·|Δ|) and
/// O(|outer|) per iteration on bushy recursions like same-generation.
///
/// A DeltaSet is filled first (the engine inserts into the *next* Δ)
/// and probed afterwards (as the *previous* Δ), never both at once, so
/// probes iterate matches directly without snapshotting.
class DeltaSet {
 public:
  bool Insert(Tuple t) {
    auto [it, inserted] = tuples_.insert(std::move(t));
    if (inserted) indexes_.OnInsert(&*it);
    return inserted;
  }

  bool Contains(const Tuple& t) const { return tuples_.count(t) != 0; }

  const std::unordered_set<Tuple, TupleHasher>& tuples() const {
    return tuples_;
  }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Invokes `fn` on tuples whose `column`-th value equals `value`
  /// (tuples too short for the column never match). `fn` must not
  /// mutate this DeltaSet.
  template <typename Fn>
  void LookupEqual(size_t column, const Value& value, Fn&& fn) const {
    LazyColumnIndexes::ProbeEqual(indexes_.Ensure(column, tuples_), column,
                                  value, fn);
  }

 private:
  std::unordered_set<Tuple, TupleHasher> tuples_;
  // Shared build-on-first-probe helper (also used by Relation); mutable
  // because a probe through the const read path may build the index.
  mutable LazyColumnIndexes indexes_;
};

/// Newly derived tuples per relation in the previous fixpoint iteration
/// — the Δ of semi-naive evaluation. Keyed by interned relation symbol:
/// the per-iteration lookup in the join loop is an integer hash, not a
/// string hash.
using DeltaMap = std::unordered_map<Symbol, DeltaSet, SymbolHasher>;

struct EvalOptions {
  /// When false, every atom match scans the full relation; used by the
  /// join ablation (bench_join) to quantify what the indexes buy.
  bool use_indexes = true;
  /// When true (production), each rule is compiled once into a RulePlan
  /// (slot bindings, interned symbols, static access paths) and the
  /// plan is executed. When false, the rule AST is interpreted directly
  /// — the seed semantics, kept as a differential-testing oracle (see
  /// the plan/interpreter equivalence suite).
  bool use_compiled_plans = true;
  /// Set on the per-worker evaluators of a parallel Δ-round (DESIGN.md
  /// §8): relation reads go through the concurrent-safe Shared paths
  /// (no scratch-buffer leases, no lazy index builds) because many
  /// workers probe the same frozen relations at once. The coordinator
  /// pre-builds every index the plans need (ForEachIndexUse).
  bool concurrent_reads = false;
};

/// Per-evaluation counters (observability and bench instrumentation).
struct EvalCounters {
  uint64_t tuples_examined = 0;
  uint64_t bindings_completed = 0;
  uint64_t delegations_emitted = 0;
  // Plan-cache and access-path telemetry (compiled path only), surfaced
  // in the bench JSON so perf PRs can attribute wins.
  uint64_t plans_compiled = 0;   // distinct rules compiled to plans
  uint64_t plan_cache_hits = 0;  // Evaluate calls served by the cache
  uint64_t slot_bindings = 0;    // slots bound during unification
  uint64_t index_lookups = 0;    // atoms matched via a column-index probe
  uint64_t full_scans = 0;       // atoms matched via a full relation scan
  uint64_t delta_index_probes = 0;  // Δ-restricted atoms using the Δ index
  uint64_t delta_scans = 0;         // Δ-restricted atoms scanning the Δ
  uint64_t negation_probes = 0;  // ground negated-atom containment checks
  // Incremental-maintenance telemetry (DESIGN.md §6), accumulated by
  // the engine's stage driver: proof in bench JSON that per-stage work
  // tracks the change size, not the view size.
  uint64_t stages_incremental = 0;  // stages served by Δ-driven passes
  uint64_t stages_full = 0;      // stages that recomputed (init/fallback)
  uint64_t tuples_retracted = 0;  // over-deleted and not re-derived
  uint64_t tuples_rederived = 0;  // over-deleted, alternative found
  uint64_t rederive_checks = 0;   // head-bound existence probes run
  // Parallel-evaluation telemetry (DESIGN.md §8): semi-naive rounds
  // that ran Δ-partitioned across the engine's worker pool. Tests
  // assert engagement through this (a parallel engine whose rounds all
  // fell back to serial would pass fingerprint checks vacuously).
  uint64_t parallel_rounds = 0;
  // Of those, rounds where some active rules were round-ineligible
  // (delegation-capable, non-rotatable body) and ran serially after the
  // replay barrier while the eligible rules ran Δ-partitioned — the
  // per-rule fallback. Zero means every parallel round was all-eligible.
  uint64_t parallel_mixed_rounds = 0;

  /// Accumulates `o` into this. The parallel round coordinator merges
  /// each worker evaluator's counters into the main evaluator's at the
  /// round barrier, so per-stage telemetry stays a single block
  /// regardless of thread count.
  void MergeFrom(const EvalCounters& o) {
    tuples_examined += o.tuples_examined;
    bindings_completed += o.bindings_completed;
    delegations_emitted += o.delegations_emitted;
    plans_compiled += o.plans_compiled;
    plan_cache_hits += o.plan_cache_hits;
    slot_bindings += o.slot_bindings;
    index_lookups += o.index_lookups;
    full_scans += o.full_scans;
    delta_index_probes += o.delta_index_probes;
    delta_scans += o.delta_scans;
    negation_probes += o.negation_probes;
    stages_incremental += o.stages_incremental;
    stages_full += o.stages_full;
    tuples_retracted += o.tuples_retracted;
    tuples_rederived += o.tuples_rederived;
    rederive_checks += o.rederive_checks;
    parallel_rounds += o.parallel_rounds;
    parallel_mixed_rounds += o.parallel_mixed_rounds;
  }
};

/// Evaluates single rules against a peer's local catalog, left to right,
/// producing head instantiations and delegation splits.
///
/// Routing of results follows the WebdamLog stage semantics:
///  - a completed body with a head located at this peer derives a local
///    fact (`on_local_fact`);
///  - a completed body with a remote head contributes to the derived set
///    shipped to that peer (`on_remote_fact`);
///  - hitting a body atom located at a *remote* peer stops local
///    evaluation and emits the residual rule as a Delegation
///    (`on_delegation`) — the paper's signature feature.
///
/// Two execution engines share these semantics: the compiled-plan path
/// (production; zero heap allocation per tuple in the steady-state join
/// loop) and the AST interpreter (oracle). Facts passed to sinks are
/// reused scratch storage on the compiled path — copy them to keep
/// them, as the engine does.
///
/// Not reentrant: sinks must not call back into Evaluate on the same
/// evaluator (slot bindings and scratch buffers are instance state).
class RuleEvaluator {
 public:
  struct Sinks {
    std::function<void(const Fact&)> on_local_fact;
    std::function<void(const Fact&)> on_remote_fact;
    std::function<void(const Delegation&)> on_delegation;
  };

  RuleEvaluator(Catalog* catalog, std::string self_peer, EvalOptions options)
      : catalog_(catalog),
        self_peer_(std::move(self_peer)),
        self_sym_(Symbol::Intern(self_peer_)),
        options_(options) {}

  /// Evaluates `rule`. When `delta` is non-null and `delta_pos >= 0`,
  /// the positive body atom at index `delta_pos` matches only tuples in
  /// the Δ-set of its resolved relation (semi-naive restriction); all
  /// other atoms match full relations. Pass delta == nullptr for a full
  /// (naive / first-iteration) evaluation.
  void Evaluate(const Rule& rule, const DeltaMap* delta, int delta_pos,
                const Sinks& sinks);

  /// Evaluates an already-compiled plan, skipping the cache lookup.
  /// The fixpoint loop resolves each rule's plan once per stage and
  /// re-drives it across iterations and Δ-positions through this.
  void EvaluatePlan(const RulePlan& plan, const DeltaMap* delta,
                    int delta_pos, const Sinks& sinks);

  /// The compiled plan for `rule`, from the cache (compiling on miss).
  /// The reference stays valid until the plan is evicted.
  const RulePlan& PlanFor(const Rule& rule);

  /// Drops the cached plan for `rule`, if any. Called when a rule is
  /// removed or a delegation retracted, so one-off rules (ad-hoc query
  /// scratch rules, churning residuals) don't accumulate plans for the
  /// evaluator's lifetime.
  void EvictPlan(const Rule& rule);

  /// True when `rule` has at least one complete *local* body match
  /// under the bindings obtained by unifying its head with `target` —
  /// i.e. the rule currently derives exactly `target`. The re-derive
  /// existence check of DRed-style retraction (DESIGN.md §6): cost is
  /// one selective body evaluation (head constants drive the access
  /// paths), independent of view size. Evaluation short-circuits on the
  /// first match, emits nothing, and never delegates (a body that
  /// reaches a remote atom does not derive locally). On the compiled
  /// path this runs the head-bound adorned plan (every head variable's
  /// slot seeded from `target`, body occurrences compiled to checks and
  /// index probes); with use_compiled_plans off it interprets, as the
  /// oracle.
  bool ExistsDerivation(const Rule& rule, const Fact& target);

  const EvalCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = EvalCounters(); }
  /// Writable counters for the engine's stage driver (the incremental
  /// stage/retraction tallies live next to the join telemetry so one
  /// JSON block tells the whole per-change-cost story).
  EvalCounters* mutable_counters() { return &counters_; }

 private:
  // --- compiled-plan execution ---------------------------------------
  /// Executes `atoms[atom_index..]`. `order` is null for the natural
  /// body order; for a Δ-first variant it maps each position back to
  /// its original body index (diagnostics) and the Δ restriction
  /// applies at position 0. Delegation can only arise under the natural
  /// order — variants are compiled only for single-peer bodies and run
  /// only when that peer is the evaluator.
  void ExecFrom(const RulePlan& plan, const std::vector<PlanAtom>& atoms,
                const uint16_t* order, size_t atom_index,
                const DeltaMap* delta, int delta_pos, const Sinks& sinks);
  bool UnifyTuple(const PlanAtom& atom, const Tuple& tuple);
  void EmitHeadPlan(const RulePlan& plan, const Sinks& sinks);
  void EmitDelegationPlan(const RulePlan& plan, size_t split_index,
                          const std::string& target, const Sinks& sinks);
  /// Seeds `plan`'s head slots from `target` (the compiled analogue of
  /// UnifyHeadWithFact) and runs the body in exists mode. `plan` must
  /// be the head-bound flavor of the rule being checked.
  bool ExistsViaPlan(const RulePlan& plan, const Fact& target);
  /// The head-bound adorned plan for `rule`, cached like PlanFor.
  const RulePlan& HeadBoundPlanFor(const Rule& rule);

  // --- AST interpreter (differential-testing oracle) -----------------
  void MatchFrom(const Rule& rule, size_t atom_index, Binding* binding,
                 const DeltaMap* delta, int delta_pos, const Sinks& sinks);
  void EmitHead(const Rule& rule, const Binding& binding,
                const Sinks& sinks);
  void EmitDelegation(const Rule& rule, size_t split_index,
                      const std::string& target, const Binding& binding,
                      const Sinks& sinks);

  Catalog* catalog_;
  std::string self_peer_;
  Symbol self_sym_;
  EvalOptions options_;
  EvalCounters counters_;

  // ExistsDerivation state: when exists_mode_ is set, MatchFrom and
  // ExecFrom short-circuit on the first complete match (exists_found_)
  // and treat remote atoms as dead branches instead of delegating. The
  // compiled path runs the head-bound plan flavor (plan.h), whose
  // bind/check op split was fixed at compile time for a *seeded* head —
  // ExistsViaPlan fills the seed slots from the target fact.
  bool exists_mode_ = false;
  bool exists_found_ = false;
  // Owned storage for seeded slot values (slots point into resident
  // tuple storage everywhere else; a target fact's values need a home
  // for the duration of the check). Reserved up front so pushes never
  // reallocate under live slot pointers.
  std::vector<Value> seed_values_;

  // Local plan cache: one strong reference per rule this evaluator has
  // installed, keyed by exact rule content hash (the per-hash vector
  // guards against collisions; entries verify full rule equality
  // against the *lookup* rule, which may be an α-variant of the shared
  // plan's owned rule). Plan storage itself lives in the process-global
  // SharedPlanCache (plan_cache.h), so N evaluators installing the same
  // rule compile it once and share one immutable plan.
  struct LocalPlanEntry {
    Rule rule;  // the rule as this evaluator installed it
    std::shared_ptr<const RulePlan> plan;
  };
  std::unordered_map<uint64_t, std::vector<LocalPlanEntry>> plans_;
  // Head-bound flavor of the same rules, resolved lazily on the first
  // existence check against each rule and evicted together with the
  // natural plan.
  std::unordered_map<uint64_t, std::vector<LocalPlanEntry>> head_bound_plans_;

  // Reusable execution scratch (capacity persists across Evaluate
  // calls; steady state performs no heap allocation).
  std::vector<const Value*> slots_;  // slot -> bound value, or nullptr
  Tuple probe_scratch_;              // ground negation probe
  Fact fact_scratch_;                // head emission
};

/// Resolves a relation/peer term under `binding`. Returns nullptr when
/// the term is a variable bound to a non-string value (such a binding
/// cannot name a relation or peer, so the branch is dead) and points to
/// the resolved name otherwise. `storage` provides space when the name
/// must be materialized from the binding.
const std::string* ResolveSym(const SymTerm& sym, const Binding& binding,
                              std::string* storage);

/// Applies `binding` to every term of `atom`; bound variables become
/// constants (string bindings in relation/peer position become names),
/// unbound variables stay. Returns false when a relation/peer variable
/// is bound to a non-string value.
bool SubstituteAtom(const Atom& atom, const Binding& binding, Atom* out);

}  // namespace wdl

#endif  // WDL_ENGINE_EVAL_H_
