// Durability-plane costs (DESIGN.md §11): what a durable peer pays per
// logged record under each fsync policy, what a snapshot costs to
// write at size, and the payoff — recovering a converged two-peer
// state from disk versus rebuilding the same state over the wire.
//
// Expected shape: kNever/kBatch appends are page-cache writes (sub-µs
// per record, batch adds one fsync per stage), kAlways is disk-bound;
// recovery-from-disk beats the wire rebuild by the full cost of
// re-deriving and re-shipping every tuple.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdint>
#include <string>

#include "durability/durability.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "runtime/system.h"

namespace wdl {
namespace {

Value I(int64_t v) { return Value::Int(v); }

std::string MakeTempRoot() {
  std::string tmpl = "/tmp/wdl_bench_durability_XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) std::abort();
  return tmpl;
}

// One WAL record per iteration through the full PeerDurability path
// (encode, frame, write, policy-driven fsync), with EndBatch called
// every kBatchRecords appends — the shape of one evaluation stage.
void BM_WalAppend(benchmark::State& state) {
  constexpr int kBatchRecords = 32;
  DurabilityOptions options;
  options.dir = MakeTempRoot() + "/p";
  options.fsync_policy = static_cast<FsyncPolicy>(state.range(0));
  options.snapshot_interval_records = 0;  // pure append, no rotation
  auto opened = PeerDurability::Open(options);
  if (!opened.ok()) std::abort();
  PeerDurability& pd = **opened;

  WalRecord record;
  record.type = WalRecordType::kLocalFactInsert;
  record.fact = Fact("data", "bench", {I(0), I(1234567890), I(42)});
  int in_batch = 0;
  for (auto _ : state) {
    if (!pd.Append(record).ok()) std::abort();
    if (++in_batch == kBatchRecords) {
      if (!pd.EndBatch().ok()) std::abort();
      in_batch = 0;
    }
  }
  (void)pd.EndBatch();
  state.SetItemsProcessed(static_cast<int64_t>(pd.counters().records_appended));
  state.counters["bytes_per_record"] =
      pd.counters().records_appended == 0
          ? 0.0
          : static_cast<double>(pd.counters().bytes_appended) /
                static_cast<double>(pd.counters().records_appended);
  state.counters["fsyncs"] = static_cast<double>(pd.counters().fsyncs);
  state.SetLabel(FsyncPolicyToString(options.fsync_policy));
}
BENCHMARK(BM_WalAppend)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

// Snapshot write cost at size: encode + atomic write + rotation, via
// the same WriteSnapshot path peers use.
void BM_SnapshotWrite(benchmark::State& state) {
  const int64_t tuples = state.range(0);
  SnapshotData snap;
  snap.peer = "bench";
  SnapshotData::RelationState rs;
  rs.decl.relation = "data";
  rs.decl.peer = "bench";
  rs.decl.kind = RelationKind::kExtensional;
  rs.decl.columns.resize(1);
  rs.decl.columns[0].name = "x";
  rs.decl.columns[0].type = ValueKind::kInt;
  for (int64_t i = 0; i < tuples; ++i) rs.tuples.push_back({I(i)});
  snap.relations.push_back(rs);

  DurabilityOptions options;
  options.dir = MakeTempRoot() + "/p";
  options.fsync_policy = FsyncPolicy::kNever;
  auto opened = PeerDurability::Open(options);
  if (!opened.ok()) std::abort();
  PeerDurability& pd = **opened;
  for (auto _ : state) {
    if (!pd.WriteSnapshot(snap).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations() * tuples);
  state.counters["snapshot_bytes"] = static_cast<double>(
      pd.counters().snapshots_written == 0
          ? 0
          : pd.counters().snapshot_bytes / pd.counters().snapshots_written);
}
BENCHMARK(BM_SnapshotWrite)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

SystemOptions DurableSystemOptions(const std::string& root) {
  SystemOptions o;
  o.durability_root = root;
  o.heartbeat_interval_rounds = 2;
  return o;
}

/// Builds the workload both recovery benches restart from: alice holds
/// N extensional facts, bob materializes them in an intensional view.
void LoadAndConverge(System& system, int64_t tuples) {
  PeerOptions po;
  po.trust_all_delegations = true;
  Peer* alice = system.CreatePeer("alice", po);
  Peer* bob = system.CreatePeer("bob", po);
  if (!alice->LoadProgramText("collection ext data@alice(x: int);").ok()) {
    std::abort();
  }
  if (!bob->LoadProgramText("collection int view@bob(x: int);").ok()) {
    std::abort();
  }
  if (!alice->AddRuleText("rule view@bob($x) :- data@alice($x);").ok()) {
    std::abort();
  }
  for (int64_t i = 0; i < tuples; ++i) {
    if (!alice->Insert(Fact("data", "alice", {I(i)})).ok()) std::abort();
  }
  if (!system.RunUntilQuiescent().ok()) std::abort();
}

// Restarting a converged durable pair from disk: snapshot + WAL replay
// + the first (no-op) reconvergence rounds. Zero tuples cross the wire.
void BM_RecoveryFromDisk(benchmark::State& state) {
  const int64_t tuples = state.range(0);
  std::string root = MakeTempRoot();
  {
    System system(DurableSystemOptions(root));
    LoadAndConverge(system, tuples);
  }
  uint64_t resyncs = 0;
  for (auto _ : state) {
    System system(DurableSystemOptions(root));
    PeerOptions po;
    po.trust_all_delegations = true;
    system.CreatePeer("alice", po);
    system.CreatePeer("bob", po);
    if (!system.RunUntilQuiescent().ok()) std::abort();
    resyncs = system.GetPeer("bob")
                  ->engine()
                  .propagation_counters()
                  .resyncs_requested;
    benchmark::DoNotOptimize(resyncs);
  }
  state.SetItemsProcessed(state.iterations() * tuples);
  state.counters["resyncs"] = static_cast<double>(resyncs);
}
BENCHMARK(BM_RecoveryFromDisk)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// The alternative a memory-only peer pays after losing its state:
// re-derive everything and ship it over the (simulated) wire.
void BM_RebuildOverWire(benchmark::State& state) {
  const int64_t tuples = state.range(0);
  for (auto _ : state) {
    SystemOptions sys;
    sys.heartbeat_interval_rounds = 2;
    System system(sys);
    LoadAndConverge(system, tuples);
    benchmark::DoNotOptimize(system.rounds_run());
  }
  state.SetItemsProcessed(state.iterations() * tuples);
}
BENCHMARK(BM_RebuildOverWire)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdl

BENCHMARK_MAIN();
