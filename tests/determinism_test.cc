#include <gtest/gtest.h>

#include "runtime/system.h"
#include "support/fixture.h"
#include "support/rng_check.h"
#include "wepic/wepic.h"

namespace wdl {
namespace {

// Global invariants of the distributed runtime, run against the full
// Wepic workload: determinism across identical runs, idempotence of
// extra rounds, and seed-independence of the *converged state* (the
// network schedule may differ; the fixpoint must not).

// Guard: every seed below is only meaningful while the RNG reproduces
// its golden sequence (the network simulator draws from it).
TEST(DeterminismRngGuard, GeneratorMatchesGoldenSequence) {
  EXPECT_TRUE(test::CheckRngGoldenSequence());
}

std::string GlobalStateFingerprint(WepicApp& app) {
  return test::GlobalStateFingerprint(app.system());
}

void RunWorkload(WepicApp& app) {
  ASSERT_TRUE(app.SetupConference().ok());
  ASSERT_TRUE(app.AddAttendee("Emilien").ok());
  ASSERT_TRUE(app.AddAttendee("Jules").ok());
  app.attendee("Emilien")->gate().TrustPeer("Jules");
  app.attendee("Jules")->gate().TrustPeer("Emilien");
  ASSERT_TRUE(app.UploadPicture("Emilien", 1, "sea.jpg", "b1").ok());
  ASSERT_TRUE(app.UploadPicture("Jules", 2, "dinner.jpg", "b2").ok());
  ASSERT_TRUE(app.AuthorizeFacebook("Emilien", 1).ok());
  ASSERT_TRUE(app.SelectAttendee("Jules", "Emilien").ok());
  ASSERT_TRUE(app.RatePicture("Emilien", 1, 5).ok());
  ASSERT_TRUE(app.SetCommunicationProtocol("Emilien", "email").ok());
  ASSERT_TRUE(app.SelectPicture("Jules", "dinner.jpg", 2, "Jules").ok());
  ASSERT_TRUE(app.Converge().ok());
}

TEST(DeterminismTest, IdenticalRunsProduceIdenticalGlobalState) {
  WepicApp a(WepicOptions{.network_seed = test::FixedTestSeed(0)});
  WepicApp b(WepicOptions{.network_seed = test::FixedTestSeed(0)});
  RunWorkload(a);
  RunWorkload(b);
  EXPECT_EQ(GlobalStateFingerprint(a), GlobalStateFingerprint(b));
  EXPECT_EQ(a.system().network().stats().messages_submitted,
            b.system().network().stats().messages_submitted);
  EXPECT_EQ(a.system().network().stats().bytes_sent,
            b.system().network().stats().bytes_sent);
}

TEST(DeterminismTest, ConvergedStateIsSeedIndependent) {
  // Different seeds may schedule deliveries differently, but the
  // converged relations and programs must agree (confluence of the
  // monotone core under reordering).
  WepicApp a(WepicOptions{.network_seed = test::FixedTestSeed(1)});
  WepicApp b(WepicOptions{.network_seed = test::FixedTestSeed(2)});
  RunWorkload(a);
  RunWorkload(b);
  EXPECT_EQ(GlobalStateFingerprint(a), GlobalStateFingerprint(b));
}

TEST(DeterminismTest, ExtraRoundsAreIdempotent) {
  WepicApp app;
  RunWorkload(app);
  std::string before = GlobalStateFingerprint(app);
  for (int i = 0; i < 20; ++i) app.system().RunRound();
  EXPECT_EQ(GlobalStateFingerprint(app), before);
}

TEST(DeterminismTest, Paper2013DialectRunsTheFullDemo) {
  // The entire Wepic application is negation-free, so it must run
  // unchanged under the paper-faithful dialect.
  WepicOptions options;
  options.engine.dialect = Dialect::kPaper2013;
  WepicApp app(options);
  RunWorkload(app);
  EXPECT_EQ(app.sigmod()->engine().catalog().Get("pictures")->size(), 2u);
  EXPECT_TRUE(app.facebook().GroupHasPicture(kFacebookGroup, 1));
}

TEST(DeterminismTest, CompiledPlansMatchInterpreterOracle) {
  // The compiled-plan executor against the seed AST interpreter over
  // the full distributed workload — delegation splits, ACL gating,
  // wrappers, deferred updates. The converged global state must be
  // identical (see also the per-program goldens in plan_test).
  WepicOptions interpreter_options;
  interpreter_options.engine.use_compiled_plans = false;
  WepicApp interpreted(interpreter_options);
  WepicApp compiled;  // default engine options: compiled plans
  RunWorkload(interpreted);
  RunWorkload(compiled);
  EXPECT_EQ(GlobalStateFingerprint(interpreted),
            GlobalStateFingerprint(compiled));
}

TEST(DeterminismTest, NaiveModeReachesSameGlobalState) {
  WepicOptions naive_options;
  naive_options.engine.mode = EvalMode::kNaive;
  WepicApp naive_app(naive_options);
  WepicApp semi_app;
  RunWorkload(naive_app);
  RunWorkload(semi_app);
  EXPECT_EQ(GlobalStateFingerprint(naive_app),
            GlobalStateFingerprint(semi_app));
}

}  // namespace
}  // namespace wdl
